//! The pooled server: acceptor + poller + a bounded worker pool.
//!
//! Three kinds of threads serve every session, and their count is
//! fixed at startup — OS threads are bounded by the pool size, never by
//! the session count:
//!
//! * **One acceptor** blocks on the listener and registers accepted
//!   connections with the poller.
//! * **One poller** owns every connection's read side: it reads
//!   nonblocking sockets into per-connection buffers, incrementally
//!   decodes length-prefixed frames, and pushes them (plus synthetic
//!   idle-timeout and shutdown events) onto per-session queues,
//!   signalling the worker pool's condvar — workers sleep on readiness,
//!   not on read-timeout polls. The poller's own sweep sleep adapts:
//!   tight under traffic, backing off to a few milliseconds when every
//!   socket is silent.
//! * **`workers` session workers** drain ready queues. A claimed flag
//!   gives each session exactly one worker at a time (commands of one
//!   session never interleave), while a slow session occupies at most
//!   one worker — it cannot head-of-line-block the rest.
//!
//! Back-pressure: a session whose event queue is full stops being read
//! (TCP back-pressure reaches the client); the queue cap bounds memory
//! per session.
//!
//! Sessions are owned (`QdomSession<'static>` over an `Arc<Mediator>`),
//! so they migrate freely across worker threads between commands — the
//! engine's shared state is `Send + Sync` end to end.

use mix_common::MixError;
use mix_obs::{Counter, Stats};
use mix_proto::{Frame, Reply, MAX_FRAME_LEN, PROTO_VERSION};
use mix_qdom::{Mediator, QdomSession};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Lock without poisoning semantics: a panic on another thread while it
/// held the lock must not cascade into killing this one. Every mutex in
/// this module guards state that stays consistent across a panic (the
/// panic paths are session code, which never leaves queues half-pushed),
/// so recovering the guard is always safe — and one misbehaving session
/// must never take the shared ready/queue locks down with it.
fn lock_np<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// How often the acceptor re-checks the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// Poller sweep sleep bounds: tight while sockets carry traffic,
/// backing off geometrically when everything is silent.
const SWEEP_MIN: Duration = Duration::from_micros(50);
const SWEEP_MAX: Duration = Duration::from_millis(5);

/// Per-session event-queue cap; a session at the cap stops being read
/// until a worker drains it.
const QUEUE_CAP: usize = 128;

/// Server policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-session cap; connection attempts past it are answered
    /// with `Frame::Reject` at handshake. `0` = unlimited.
    pub max_sessions: usize,
    /// Per-session cap on materialized result nodes; once a session's
    /// `NodesBuilt` counter reaches it, further *result-creating*
    /// commands (`Query`/`Q`) answer `Reply::Err(MixError::Plan)`.
    /// Navigation of existing results stays allowed so the client can
    /// still read (and render) what it already paid for. `0` =
    /// unlimited.
    pub node_budget: u64,
    /// A session that sends nothing for this long is closed with a
    /// `Bye`.
    pub idle_timeout: Duration,
    /// Session-worker threads in the pool. `0` (the default) sizes the
    /// pool to the hardware (`available_parallelism`). Sessions
    /// multiplex over this pool; OS threads never grow with session
    /// count.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 256,
            node_budget: 0,
            idle_timeout: Duration::from_secs(30),
            workers: 0,
        }
    }
}

impl ServerConfig {
    fn worker_count(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Builds one mediator per accepted session. To share compiled plans
/// across sessions, build the mediators inside with a common
/// [`mix_qdom::SharedPlanCache`]
/// (`MediatorOptions::builder().shared_plan_cache(..)`).
pub type MediatorFactory = dyn Fn() -> Mediator + Send + Sync;

/// One session's event, produced by the poller, consumed by a worker.
enum Event {
    /// A decoded frame plus its wire size (header included).
    Frame(Frame, usize),
    /// The idle deadline passed with no traffic.
    Idle,
    /// Peer closed, read error, or undecodable bytes: close silently.
    Closed,
    /// Graceful server shutdown: say `Bye` and close.
    Shutdown,
}

/// The queue half of a connection — the only state the poller touches.
struct ConnQueue {
    events: VecDeque<Event>,
    /// In the ready queue or claimed by a worker — guards against a
    /// session being scheduled twice (and so against two workers
    /// interleaving one session's commands).
    scheduled: bool,
}

/// The session half — locked only by the (single) claiming worker.
struct SessState {
    session: Option<QdomSession<'static>>,
    handshook: bool,
    /// Holds one `live` slot (released exactly once at close).
    slot_held: bool,
}

struct Conn {
    id: u64,
    stream: TcpStream,
    queue: Mutex<ConnQueue>,
    sess: Mutex<SessState>,
    /// Worker → poller: this connection is finished; stop reading it
    /// and drop its poll state.
    closed: AtomicBool,
}

struct Shared {
    ready: Mutex<VecDeque<Arc<Conn>>>,
    ready_cv: Condvar,
    shutdown: AtomicBool,
    /// Set by the poller once every live session has its `Shutdown`
    /// event queued — only then may idle workers exit.
    drained: AtomicBool,
    stats: Stats,
    live: AtomicUsize,
    config: ServerConfig,
    factory: Arc<MediatorFactory>,
}

impl Shared {
    /// Queue one event and schedule the session on the worker pool if
    /// it is not already scheduled/claimed.
    fn push_event(&self, conn: &Arc<Conn>, ev: Event) {
        let schedule = {
            let mut q = lock_np(&conn.queue);
            q.events.push_back(ev);
            !std::mem::replace(&mut q.scheduled, true)
        };
        if schedule {
            lock_np(&self.ready).push_back(Arc::clone(conn));
            self.ready_cv.notify_one();
        }
    }
}

/// A running MIX server: acceptor + poller + a fixed worker pool.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving: each
    /// accepted session gets a fresh `factory()` mediator and is
    /// multiplexed over the worker pool.
    pub fn start(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        factory: Arc<MediatorFactory>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let worker_count = config.worker_count();
        let shared = Arc::new(Shared {
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            stats: Stats::new(),
            live: AtomicUsize::new(0),
            config,
            factory,
        });
        let incoming: Arc<Mutex<Vec<Arc<Conn>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let incoming = Arc::clone(&incoming);
            thread::Builder::new()
                .name("mix-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, incoming))
                .expect("spawn acceptor")
        };
        let poller = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("mix-serve-poll".into())
                .spawn(move || poll_loop(shared, incoming))
                .expect("spawn poller")
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mix-serve-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn session worker")
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            poller: Some(poller),
            workers,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-level counters: `SessionsOpened`/`Closed`/`Rejected`,
    /// `WireCommands`, `WireBytesIn`/`Out`. Session *work* counters
    /// (SQL, tuples, nodes) live on each session's own stats and are
    /// readable over the wire via `Command::Stats`.
    pub fn stats(&self) -> &Stats {
        &self.shared.stats
    }

    /// Sessions currently live (admitted and not yet closed).
    pub fn live_sessions(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Session-worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Graceful shutdown: stop accepting, let every in-flight command
    /// finish, send `Bye` to every session, join every thread. When
    /// this returns, all sessions are dropped — including their
    /// prefetch producers, so `active_prefetchers()` is back to what
    /// it was before the server started.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The poller queues a Shutdown event per live session, then
        // sets `drained` and exits once workers have closed them all.
        if let Some(h) = self.poller.take() {
            let _ = h.join();
        }
        self.shared.ready_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, incoming: Arc<Mutex<Vec<Arc<Conn>>>>) {
    let mut next_id: u64 = 1;
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let conn = Arc::new(Conn {
                    id: next_id,
                    stream,
                    queue: Mutex::new(ConnQueue {
                        events: VecDeque::new(),
                        scheduled: false,
                    }),
                    sess: Mutex::new(SessState {
                        session: None,
                        handshook: false,
                        slot_held: false,
                    }),
                    closed: AtomicBool::new(false),
                });
                next_id += 1;
                lock_np(&incoming).push(conn);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// Poller-side per-connection state: the decode buffer and the idle
/// deadline. Lives outside `Conn` — no lock is ever needed to decode.
struct Polled {
    conn: Arc<Conn>,
    buf: Vec<u8>,
    deadline: Instant,
    /// The poller is done with this connection (events queued, reads
    /// stopped); it is pruned once the worker marks `conn.closed`.
    retired: bool,
}

fn poll_loop(shared: Arc<Shared>, incoming: Arc<Mutex<Vec<Arc<Conn>>>>) {
    let mut conns: Vec<Polled> = Vec::new();
    let mut sweep = SWEEP_MAX;
    let mut tmp = vec![0u8; 16 * 1024];
    loop {
        let shutting = shared.shutdown.load(Ordering::Relaxed);
        let now = Instant::now();
        for conn in lock_np(&incoming).drain(..) {
            // Connections accepted after shutdown began are dropped
            // here (their sockets close with the Arc).
            if !shutting {
                conns.push(Polled {
                    conn,
                    buf: Vec::new(),
                    deadline: now + shared.config.idle_timeout,
                    retired: false,
                });
            }
        }
        let mut activity = false;
        for p in &mut conns {
            if p.retired || p.conn.closed.load(Ordering::Relaxed) {
                continue;
            }
            if shutting {
                shared.push_event(&p.conn, Event::Shutdown);
                p.retired = true;
                continue;
            }
            // Back-pressure: a session at its queue cap stops being
            // read until a worker drains it.
            if lock_np(&p.conn.queue).events.len() >= QUEUE_CAP {
                continue;
            }
            if sweep_read(&shared, p, &mut tmp, now) {
                activity = true;
            }
        }
        conns.retain(|p| !p.conn.closed.load(Ordering::Relaxed));
        if shutting {
            // Every survivor has its Shutdown queued; tell workers the
            // drain is complete, then wait for them to close the rest.
            shared.drained.store(true, Ordering::SeqCst);
            shared.ready_cv.notify_all();
            if conns.is_empty() {
                return;
            }
        }
        if activity {
            // Traffic in flight: yield so workers (and clients, on a
            // small machine) run, then sweep again without a timer —
            // a sleeping poller would idle the worker pool.
            sweep = SWEEP_MIN;
            thread::yield_now();
        } else {
            sweep = (sweep * 2).min(SWEEP_MAX);
            thread::sleep(sweep);
        }
    }
}

/// Read whatever one socket has, decode complete frames into events.
/// Returns true when any bytes arrived.
fn sweep_read(shared: &Arc<Shared>, p: &mut Polled, tmp: &mut [u8], now: Instant) -> bool {
    let mut got = false;
    loop {
        match (&p.conn.stream).read(tmp) {
            Ok(0) => {
                shared.push_event(&p.conn, Event::Closed);
                p.retired = true;
                return got;
            }
            Ok(n) => {
                got = true;
                p.buf.extend_from_slice(&tmp[..n]);
                p.deadline = now + shared.config.idle_timeout;
                if n < tmp.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                shared.push_event(&p.conn, Event::Closed);
                p.retired = true;
                return got;
            }
        }
    }
    // Decode every complete frame in the buffer.
    let mut consumed = 0;
    while p.buf.len() >= consumed + 4 {
        let len =
            u32::from_le_bytes(p.buf[consumed..consumed + 4].try_into().expect("4 bytes")) as usize;
        if len == 0 || len > MAX_FRAME_LEN as usize {
            shared.push_event(&p.conn, Event::Closed);
            p.retired = true;
            break;
        }
        if p.buf.len() < consumed + 4 + len {
            break; // partial frame; wait for more bytes
        }
        let payload = &p.buf[consumed + 4..consumed + 4 + len];
        match Frame::decode_payload(payload) {
            Ok(f) => shared.push_event(&p.conn, Event::Frame(f, 4 + len)),
            Err(_) => {
                shared.push_event(&p.conn, Event::Closed);
                p.retired = true;
                break;
            }
        }
        consumed += 4 + len;
    }
    if consumed > 0 {
        p.buf.drain(..consumed);
    }
    if !p.retired && now >= p.deadline {
        shared.push_event(&p.conn, Event::Idle);
        p.retired = true;
    }
    got
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let conn = {
            let mut q = lock_np(&shared.ready);
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.drained.load(Ordering::Relaxed) {
                    break None;
                }
                // The timeout only bounds shutdown latency if a notify
                // is lost; readiness normally arrives via the condvar.
                q = shared
                    .ready_cv
                    .wait_timeout(q, POLL)
                    .unwrap_or_else(|p| p.into_inner())
                    .0;
            }
        };
        let Some(conn) = conn else { return };
        serve_batch(&shared, &conn);
    }
}

/// Drain one session's queued events. The session is claimed
/// (`scheduled` stayed true when it was popped), so this worker is the
/// only one touching its `sess` state until the batch ends.
fn serve_batch(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let mut sess = lock_np(&conn.sess);
    loop {
        let ev = lock_np(&conn.queue).events.pop_front();
        let Some(ev) = ev else { break };
        if conn.closed.load(Ordering::Relaxed) {
            continue; // closed mid-batch: discard the remainder
        }
        // A panic in session code (mediator construction, dispatch, a
        // user-supplied tracer) must cost only this session: report it
        // on the wire if the socket still works, close the connection,
        // and keep the worker alive for everyone else. All shared locks
        // are either not held here or recovered via `lock_np`.
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            handle_event(shared, conn, &mut sess, ev)
        }))
        .is_err();
        if panicked {
            send(
                conn,
                &shared.stats,
                &Frame::Rep(Reply::Err(MixError::internal(
                    "session panicked; connection closed",
                ))),
            );
            close(conn, &mut sess, shared);
        }
    }
    drop(sess);
    // Unclaim — or reschedule if the poller queued more meanwhile.
    let reschedule = {
        let mut q = lock_np(&conn.queue);
        if q.events.is_empty() || conn.closed.load(Ordering::Relaxed) {
            q.scheduled = false;
            false
        } else {
            true
        }
    };
    if reschedule {
        lock_np(&shared.ready).push_back(Arc::clone(conn));
        shared.ready_cv.notify_one();
    }
}

fn budget_exhausted(session: &QdomSession<'_>, budget: u64) -> bool {
    budget != 0 && session.ctx().stats().get(Counter::NodesBuilt) >= budget
}

fn handle_event(shared: &Arc<Shared>, conn: &Arc<Conn>, sess: &mut SessState, ev: Event) {
    let stats = &shared.stats;
    if !sess.handshook {
        // Nothing but a valid Hello opens a session; anything else —
        // silence until the idle deadline included — just drops the
        // connection (no slot was ever held).
        match ev {
            Event::Frame(Frame::Hello { version }, n) => {
                stats.add(Counter::WireBytesIn, n as u64);
                if version != PROTO_VERSION {
                    stats.inc(Counter::SessionsRejected);
                    send(
                        conn,
                        stats,
                        &Frame::Reject {
                            reason: format!(
                            "protocol version mismatch: client v{version}, server v{PROTO_VERSION}"
                        ),
                        },
                    );
                    return close(conn, sess, shared);
                }
                if !acquire_slot(&shared.live, shared.config.max_sessions) {
                    stats.inc(Counter::SessionsRejected);
                    send(
                        conn,
                        stats,
                        &Frame::Reject {
                            reason: format!(
                                "session limit reached ({} live)",
                                shared.config.max_sessions
                            ),
                        },
                    );
                    return close(conn, sess, shared);
                }
                sess.slot_held = true;
                stats.inc(Counter::SessionsOpened);
                if !send(
                    conn,
                    stats,
                    &Frame::Welcome {
                        version: PROTO_VERSION,
                        session: conn.id,
                    },
                ) {
                    return close(conn, sess, shared);
                }
                let mediator = Arc::new((shared.factory)());
                sess.session = Some(mediator.session_arc());
                sess.handshook = true;
            }
            _ => close(conn, sess, shared),
        }
        return;
    }
    match ev {
        Event::Frame(Frame::Cmd(cmd), n) => {
            stats.add(Counter::WireBytesIn, n as u64);
            stats.inc(Counter::WireCommands);
            let session = sess.session.as_mut().expect("handshook session");
            let reply =
                if cmd.creates_result() && budget_exhausted(session, shared.config.node_budget) {
                    Reply::Err(MixError::plan(format!(
                        "session node budget exhausted ({} nodes); navigation of existing \
                     results is still allowed",
                        shared.config.node_budget
                    )))
                } else {
                    session.dispatch(cmd)
                };
            if !send(conn, stats, &Frame::Rep(reply)) {
                close(conn, sess, shared);
            }
        }
        Event::Frame(Frame::Bye, n) => {
            stats.add(Counter::WireBytesIn, n as u64);
            send(conn, stats, &Frame::Bye);
            close(conn, sess, shared);
        }
        Event::Frame(_, n) => {
            // A handshake frame mid-session is a protocol violation;
            // answer once and close.
            stats.add(Counter::WireBytesIn, n as u64);
            send(
                conn,
                stats,
                &Frame::Rep(Reply::Err(MixError::invalid(
                    "unexpected frame: only Cmd and Bye are valid after the handshake",
                ))),
            );
            close(conn, sess, shared);
        }
        Event::Idle | Event::Shutdown => {
            send(conn, stats, &Frame::Bye);
            close(conn, sess, shared);
        }
        Event::Closed => close(conn, sess, shared),
    }
}

/// Finish a connection: drop the session (joining its prefetch
/// producers), release the admission slot, and hand the socket back to
/// the OS. The poller prunes its state on the next sweep.
fn close(conn: &Arc<Conn>, sess: &mut SessState, shared: &Arc<Shared>) {
    sess.session = None;
    if std::mem::take(&mut sess.slot_held) {
        shared.live.fetch_sub(1, Ordering::AcqRel);
        shared.stats.inc(Counter::SessionsClosed);
    }
    conn.closed.store(true, Ordering::SeqCst);
    let _ = conn.stream.shutdown(NetShutdown::Both);
}

/// Take one session slot, or refuse if the server is full.
fn acquire_slot(live: &AtomicUsize, max: usize) -> bool {
    let mut cur = live.load(Ordering::Relaxed);
    loop {
        if max != 0 && cur >= max {
            return false;
        }
        match live.compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
}

/// Write one frame to the (nonblocking, poller-shared) socket, counting
/// bytes; `false` means the peer is gone. A full send buffer retries
/// with a short sleep — the cost lands on the slow session's worker
/// slot, not on the poller or other sessions.
fn send(conn: &Arc<Conn>, stats: &Stats, frame: &Frame) -> bool {
    let bytes = frame.encode();
    let mut off = 0;
    while off < bytes.len() {
        match (&conn.stream).write(&bytes[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    stats.add(Counter::WireBytesOut, bytes.len() as u64);
    true
}
