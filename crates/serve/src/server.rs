//! The listener and the per-session worker loop.

use mix_common::MixError;
use mix_obs::{Counter, Stats};
use mix_proto::{read_frame, write_frame, Frame, Reply, PROTO_VERSION};
use mix_qdom::{Mediator, QdomSession};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often idle workers and the acceptor re-check the shutdown flag.
/// This bounds shutdown latency; it does not throttle busy sessions,
/// which only hit the poll when waiting for the next command.
const POLL: Duration = Duration::from_millis(20);

/// Once a frame has started arriving, how long the rest may take.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-session cap; connection attempts past it are answered
    /// with `Frame::Reject` at handshake. `0` = unlimited.
    pub max_sessions: usize,
    /// Per-session cap on materialized result nodes; once a session's
    /// `NodesBuilt` counter reaches it, further *result-creating*
    /// commands (`Query`/`Q`) answer `Reply::Err(MixError::Plan)`.
    /// Navigation of existing results stays allowed so the client can
    /// still read (and render) what it already paid for. `0` =
    /// unlimited.
    pub node_budget: u64,
    /// A session that sends nothing for this long is closed with a
    /// `Bye`.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_sessions: 256,
            node_budget: 0,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Builds one mediator per accepted session. The engine is
/// single-threaded by design (`Rc`-based lazy results), so sessions
/// never share an engine — only the factory crosses threads.
pub type MediatorFactory = dyn Fn() -> Mediator + Send + Sync;

/// A running MIX server: a listener plus one blocking worker thread
/// per live session.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    live: Arc<AtomicUsize>,
    stats: Stats,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting
    /// sessions, each served by a fresh `factory()` mediator on its
    /// own thread.
    pub fn start(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        factory: Arc<MediatorFactory>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let live = Arc::new(AtomicUsize::new(0));
        let stats = Stats::new();
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let workers = Arc::clone(&workers);
            let live = Arc::clone(&live);
            let stats = stats.clone();
            thread::spawn(move || {
                accept_loop(listener, config, factory, shutdown, workers, live, stats)
            })
        };
        Ok(Server {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
            live,
            stats,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-level counters: `SessionsOpened`/`Closed`/`Rejected`,
    /// `WireCommands`, `WireBytesIn`/`Out`. Session *work* counters
    /// (SQL, tuples, nodes) live on each session's own stats and are
    /// readable over the wire via `Command::Stats`.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Sessions currently live (admitted and not yet closed).
    pub fn live_sessions(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, let every in-flight command
    /// finish, send `Bye` to every session, join every worker. When
    /// this returns, all sessions are dropped — including their
    /// prefetcher threads, so `active_prefetchers()` is back to what
    /// it was before the server started.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.workers.lock().unwrap();
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    config: ServerConfig,
    factory: Arc<MediatorFactory>,
    shutdown: Arc<AtomicBool>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    live: Arc<AtomicUsize>,
    stats: Stats,
) {
    let mut next_id: u64 = 1;
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let id = next_id;
                next_id += 1;
                let config = config.clone();
                let factory = Arc::clone(&factory);
                let shutdown = Arc::clone(&shutdown);
                let live = Arc::clone(&live);
                let stats = stats.clone();
                let handle = thread::spawn(move || {
                    worker(stream, id, config, factory, shutdown, live, stats)
                });
                workers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// What one wait for the next frame produced.
enum Waited {
    Frame(Frame, usize),
    Closed,
    Idle,
    Shutdown,
    Failed,
}

/// Wait for one frame, polling the shutdown flag and the idle
/// deadline. The stream's read timeout is `POLL` while waiting; once
/// the first byte of a frame is visible the whole frame is read with a
/// generous timeout, so a slow-writing client cannot split a frame
/// across idle checks.
fn wait_frame(stream: &mut TcpStream, shutdown: &AtomicBool, idle: Duration) -> Waited {
    let deadline = Instant::now() + idle;
    let mut probe = [0u8; 1];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Waited::Shutdown;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return Waited::Closed,
            Ok(_) => {
                let _ = stream.set_read_timeout(Some(FRAME_READ_TIMEOUT));
                let r = read_frame(stream);
                let _ = stream.set_read_timeout(Some(POLL));
                return match r {
                    Ok(Some((f, n))) => Waited::Frame(f, n),
                    Ok(None) => Waited::Closed,
                    Err(_) => Waited::Failed,
                };
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return Waited::Idle;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Waited::Failed,
        }
    }
}

/// Take one session slot, or refuse if the server is full.
fn acquire_slot(live: &AtomicUsize, max: usize) -> bool {
    let mut cur = live.load(Ordering::Relaxed);
    loop {
        if max != 0 && cur >= max {
            return false;
        }
        match live.compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
}

fn budget_exhausted(session: &QdomSession<'_>, budget: u64) -> bool {
    budget != 0 && session.ctx().stats().get(Counter::NodesBuilt) >= budget
}

fn worker(
    mut stream: TcpStream,
    id: u64,
    config: ServerConfig,
    factory: Arc<MediatorFactory>,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    stats: Stats,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));

    // ---- handshake ----------------------------------------------------
    let hello_version = match wait_frame(&mut stream, &shutdown, config.idle_timeout) {
        Waited::Frame(Frame::Hello { version }, n) => {
            stats.add(Counter::WireBytesIn, n as u64);
            version
        }
        // Anything else before Hello — including silence until the
        // idle deadline — just drops the connection.
        _ => return,
    };
    if hello_version != PROTO_VERSION {
        stats.inc(Counter::SessionsRejected);
        send(
            &mut stream,
            &stats,
            &Frame::Reject {
                reason: format!(
                    "protocol version mismatch: client v{hello_version}, server v{PROTO_VERSION}"
                ),
            },
        );
        return;
    }
    if !acquire_slot(&live, config.max_sessions) {
        stats.inc(Counter::SessionsRejected);
        send(
            &mut stream,
            &stats,
            &Frame::Reject {
                reason: format!("session limit reached ({} live)", config.max_sessions),
            },
        );
        return;
    }
    // The slot is held: every exit path below must release it.
    stats.inc(Counter::SessionsOpened);
    if !send(
        &mut stream,
        &stats,
        &Frame::Welcome {
            version: PROTO_VERSION,
            session: id,
        },
    ) {
        live.fetch_sub(1, Ordering::AcqRel);
        stats.inc(Counter::SessionsClosed);
        return;
    }

    // ---- the session ----------------------------------------------------
    let mediator = factory();
    let mut session = mediator.session();
    loop {
        match wait_frame(&mut stream, &shutdown, config.idle_timeout) {
            Waited::Frame(Frame::Cmd(cmd), n) => {
                stats.add(Counter::WireBytesIn, n as u64);
                stats.inc(Counter::WireCommands);
                let reply =
                    if cmd.creates_result() && budget_exhausted(&session, config.node_budget) {
                        Reply::Err(MixError::plan(format!(
                            "session node budget exhausted ({} nodes); navigation of existing \
                         results is still allowed",
                            config.node_budget
                        )))
                    } else {
                        session.dispatch(cmd)
                    };
                if !send(&mut stream, &stats, &Frame::Rep(reply)) {
                    break;
                }
            }
            Waited::Frame(Frame::Bye, n) => {
                stats.add(Counter::WireBytesIn, n as u64);
                send(&mut stream, &stats, &Frame::Bye);
                break;
            }
            Waited::Frame(_, n) => {
                // A handshake frame mid-session is a protocol violation;
                // answer once and close.
                stats.add(Counter::WireBytesIn, n as u64);
                send(
                    &mut stream,
                    &stats,
                    &Frame::Rep(Reply::Err(MixError::invalid(
                        "unexpected frame: only Cmd and Bye are valid after the handshake",
                    ))),
                );
                break;
            }
            Waited::Idle | Waited::Shutdown => {
                // Idle timeout or graceful shutdown: the in-flight
                // command (if any) already completed above; say Bye.
                send(&mut stream, &stats, &Frame::Bye);
                break;
            }
            Waited::Closed | Waited::Failed => break,
        }
    }
    // Dropping the session and its mediator joins any prefetcher
    // threads the session's lazy results started.
    drop(session);
    drop(mediator);
    live.fetch_sub(1, Ordering::AcqRel);
    stats.inc(Counter::SessionsClosed);
}

/// Write one frame, counting bytes; `false` means the peer is gone.
fn send(stream: &mut TcpStream, stats: &Stats, frame: &Frame) -> bool {
    match write_frame(stream, frame) {
        Ok(n) => {
            stats.add(Counter::WireBytesOut, n as u64);
            true
        }
        Err(_) => false,
    }
}
