//! The MIX server front-end: many concurrent QDOM sessions over the
//! framed wire protocol.
//!
//! The paper's architecture puts a thin navigation client on one side
//! of a network boundary and the mediator on the other. `mix-serve`
//! implements the mediator side of that boundary over `mix-proto`'s
//! framed protocol:
//!
//! * [`Server`] — a TCP listener that multiplexes every accepted
//!   connection over a **bounded worker pool**: one acceptor, one
//!   poller that decodes frames into per-session event queues, and a
//!   fixed number of session workers woken by a condvar (OS threads are
//!   bounded by [`ServerConfig::workers`], never by session count, and
//!   the server never busy-waits while idle). The engine is
//!   `Send + Sync` (`Arc`-based virtual results), so owned sessions
//!   migrate across workers between commands; the server builds a
//!   *fresh mediator per session* from a caller-supplied factory, and
//!   sessions share exactly what the factory wires in — e.g. a
//!   process-wide [`mix_qdom::SharedPlanCache`] and the pooled prefetch
//!   executor. The workspace carries no async runtime — the listener is
//!   plain `std::net` with nonblocking sockets, which keeps the whole
//!   stack dependency-free.
//! * Session lifecycle — a `Hello`/`Welcome` handshake (version
//!   checked), an idle timeout that closes silent sessions, and a
//!   clean `Bye` in both directions.
//! * Admission control — a `max_sessions` cap answered with
//!   `Frame::Reject` at handshake, and a per-session node budget
//!   answered with `Reply::Err` at query admission, so an overloaded
//!   server degrades with clean errors instead of collapsing.
//! * Graceful shutdown — [`Server::shutdown`] stops accepting, lets
//!   every in-flight command finish, sends `Bye`, joins every worker,
//!   and drops every session (which joins its prefetcher threads:
//!   `active_prefetchers()` returns to zero).
//! * [`WireClient`] — the thin client: connects, speaks the handshake,
//!   and exposes the same named methods as the in-process
//!   `QdomSession`, returning the same `MixError`s.

#![deny(missing_docs)]

mod client;
mod server;

pub use client::{WireClient, WireError};
pub use server::{MediatorFactory, Server, ServerConfig};
