//! The thin wire client: the paper's client-side QDOM library over a
//! socket.

use mix_common::{ColumnBlock, MixError, Name, Value};
use mix_proto::{read_frame, write_frame, Command, Frame, Reply, WireNode, PROTO_VERSION};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// What can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum WireError {
    /// The socket failed (includes malformed frames).
    Io(io::Error),
    /// The server answered the command with a mediator error.
    Mix(MixError),
    /// The server refused the handshake (admission control or version
    /// mismatch).
    Rejected(String),
    /// The server broke the frame protocol (e.g. a reply variant the
    /// command never produces).
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Mix(e) => write!(f, "{e}"),
            WireError::Rejected(r) => write!(f, "handshake rejected: {r}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<MixError> for WireError {
    fn from(e: MixError) -> WireError {
        WireError::Mix(e)
    }
}

/// A connected wire session. Mirrors the in-process `QdomSession`
/// surface method for method; every call is one framed round trip.
pub struct WireClient {
    stream: TcpStream,
    session: u64,
}

impl WireClient {
    /// Connect and run the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: PROTO_VERSION,
            },
        )?;
        match read_frame(&mut stream)? {
            Some((Frame::Welcome { session, .. }, _)) => Ok(WireClient { stream, session }),
            Some((Frame::Reject { reason }, _)) => Err(WireError::Rejected(reason)),
            Some((other, _)) => Err(WireError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
            None => Err(WireError::Protocol("server closed during handshake".into())),
        }
    }

    /// The server-assigned session id (log correlation).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Send one command and read its reply — the raw form of every
    /// typed method below.
    pub fn call(&mut self, cmd: Command) -> Result<Reply, WireError> {
        write_frame(&mut self.stream, &Frame::Cmd(cmd))?;
        match read_frame(&mut self.stream)? {
            Some((Frame::Rep(rep), _)) => Ok(rep),
            Some((Frame::Bye, _)) => Err(WireError::Protocol(
                "server closed the session (idle timeout or shutdown)".into(),
            )),
            Some((other, _)) => Err(WireError::Protocol(format!(
                "expected a reply, got {other:?}"
            ))),
            None => Err(WireError::Protocol("server dropped the connection".into())),
        }
    }

    /// Clean close: send `Bye`, wait for the server's `Bye`.
    pub fn close(mut self) -> Result<(), WireError> {
        write_frame(&mut self.stream, &Frame::Bye)?;
        // The server answers Bye then closes; a straight close (e.g.
        // it shut down first) is fine too.
        match read_frame(&mut self.stream) {
            Ok(Some((Frame::Bye, _))) | Ok(None) => Ok(()),
            Ok(Some((other, _))) => {
                Err(WireError::Protocol(format!("expected Bye, got {other:?}")))
            }
            Err(e) => Err(WireError::Io(e)),
        }
    }

    /// Wait (blocking) for the server to end the session — used to
    /// observe idle timeouts and graceful shutdown.
    pub fn wait_server_close(&mut self) -> Result<(), WireError> {
        match read_frame(&mut self.stream) {
            Ok(Some((Frame::Bye, _))) | Ok(None) => Ok(()),
            Ok(Some((other, _))) => {
                Err(WireError::Protocol(format!("expected Bye, got {other:?}")))
            }
            Err(e) => Err(WireError::Io(e)),
        }
    }

    // ---- the typed QDOM surface ----------------------------------------

    /// Issue a query; returns the result root.
    pub fn query(&mut self, text: &str) -> Result<WireNode, WireError> {
        match self.call(Command::Query { text: text.into() })? {
            Reply::Node(n) => Ok(n),
            other => Err(unexpected(other, "query")),
        }
    }

    /// `q(query, p)`: query in place from `from`.
    pub fn q(&mut self, text: &str, from: WireNode) -> Result<WireNode, WireError> {
        match self.call(Command::Q {
            text: text.into(),
            from,
        })? {
            Reply::Node(n) => Ok(n),
            other => Err(unexpected(other, "q")),
        }
    }

    /// `d(p)`: first child.
    pub fn d(&mut self, p: WireNode) -> Result<Option<WireNode>, WireError> {
        match self.call(Command::D { p })? {
            Reply::Step(n) => Ok(n),
            other => Err(unexpected(other, "d")),
        }
    }

    /// `r(p)`: right sibling.
    pub fn r(&mut self, p: WireNode) -> Result<Option<WireNode>, WireError> {
        match self.call(Command::R { p })? {
            Reply::Step(n) => Ok(n),
            other => Err(unexpected(other, "r")),
        }
    }

    /// `fl(p)`: element label.
    pub fn fl(&mut self, p: WireNode) -> Result<Option<Name>, WireError> {
        match self.call(Command::Fl { p })? {
            Reply::Label(l) => Ok(l),
            other => Err(unexpected(other, "fl")),
        }
    }

    /// `fv(p)`: leaf value.
    pub fn fv(&mut self, p: WireNode) -> Result<Option<Value>, WireError> {
        match self.call(Command::Fv { p })? {
            Reply::Value(v) => Ok(v),
            other => Err(unexpected(other, "fv")),
        }
    }

    /// All children of `p`.
    pub fn children(&mut self, p: WireNode) -> Result<Vec<WireNode>, WireError> {
        match self.call(Command::Children { p })? {
            Reply::Nodes(ns) => Ok(ns),
            other => Err(unexpected(other, "children")),
        }
    }

    /// Child count of `p`.
    pub fn child_count(&mut self, p: WireNode) -> Result<u64, WireError> {
        match self.call(Command::ChildCount { p })? {
            Reply::Count(n) => Ok(n),
            other => Err(unexpected(other, "child_count")),
        }
    }

    /// Rendered subtree under `p`.
    pub fn render(&mut self, p: WireNode) -> Result<String, WireError> {
        match self.call(Command::Render { p })? {
            Reply::Text(t) => Ok(t),
            other => Err(unexpected(other, "render")),
        }
    }

    /// EXPLAIN (ANALYZE) for `p`'s result.
    pub fn explain(&mut self, p: WireNode) -> Result<String, WireError> {
        match self.call(Command::Explain { p })? {
            Reply::Text(t) => Ok(t),
            other => Err(unexpected(other, "explain")),
        }
    }

    /// Bulk-export up to `max_rows` children of `p` as one block.
    pub fn export(&mut self, p: WireNode, max_rows: u32) -> Result<ColumnBlock, WireError> {
        match self.call(Command::Export { p, max_rows })? {
            Reply::Block(b) => Ok(b),
            other => Err(unexpected(other, "export")),
        }
    }

    /// The session's work counters.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, WireError> {
        match self.call(Command::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected(other, "stats")),
        }
    }
}

fn unexpected(r: Reply, cmd: &str) -> WireError {
    match r {
        Reply::Err(e) => WireError::Mix(e),
        other => WireError::Protocol(format!("{cmd}: unexpected reply variant {other:?}")),
    }
}
