//! The serve suite: lifecycle, admission control, budget, stale
//! handles, idle timeout, graceful shutdown, the wire-vs-in-process
//! equivalence pin, and the shared-state concurrency suite (shared
//! plan cache + pooled prefetch under the worker-pool server).

use mix_common::{MixError, PrefetchPolicy, Value};
use mix_engine::AccessMode;
use mix_obs::Counter;
use mix_proto::{read_frame, write_frame, Command, Frame, Reply, WireNode, PROTO_VERSION};
use mix_qdom::{Mediator, MediatorOptions, SharedPlanCache};
use mix_relational::active_prefetchers;
use mix_serve::{Server, ServerConfig, WireClient, WireError};
use mix_wrapper::fig2_catalog;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

const Q2: &str = "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"E\" RETURN $P";

const Q3: &str = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O";

fn fig2_factory(prefetch: PrefetchPolicy) -> Arc<dyn Fn() -> Mediator + Send + Sync> {
    Arc::new(move || {
        let (cat, _db) = fig2_catalog();
        Mediator::with_options(
            cat,
            MediatorOptions::builder()
                .access(AccessMode::Lazy)
                .optimize(true)
                .prefetch(prefetch)
                .build(),
        )
    })
}

fn start(config: ServerConfig) -> Server {
    Server::start("127.0.0.1:0", config, fig2_factory(PrefetchPolicy::Off)).expect("bind")
}

/// The paper's Example 2.1 as a wire script; returns every observable
/// (labels, renders, counters) for comparison.
fn run_script_wire(client: &mut WireClient) -> Vec<String> {
    let mut out = Vec::new();
    let p0 = client.query(Q1).unwrap();
    let p1 = client.d(p0).unwrap().unwrap();
    out.push(format!("{:?}", client.fl(p1).unwrap()));
    let p4 = client.q(Q2, p0).unwrap();
    let p5 = client.d(p4).unwrap().unwrap();
    out.push(client.render(p5).unwrap());
    let p9 = client.q(Q3, p5).unwrap();
    out.push(client.child_count(p9).unwrap().to_string());
    out.push(client.render(p9).unwrap());
    out.push(format!("{:?}", client.export(p5, 0).unwrap()));
    out.push(format!("{:?}", client.stats().unwrap()));
    out
}

/// The same script in-process, via the named wrappers (which route
/// through the same `dispatch`).
fn run_script_local() -> Vec<String> {
    let m = fig2_factory(PrefetchPolicy::Off)();
    let mut s = m.session();
    let mut out = Vec::new();
    let p0 = s.query(Q1).unwrap();
    let p1 = s.d(p0).unwrap().unwrap();
    out.push(format!("{:?}", s.fl(p1).unwrap()));
    let p4 = s.q(Q2, p0).unwrap();
    let p5 = s.d(p4).unwrap().unwrap();
    out.push(s.render(p5));
    let p9 = s.q(Q3, p5).unwrap();
    out.push(s.child_count(p9).unwrap().to_string());
    out.push(s.render(p9));
    out.push(format!("{:?}", s.export(p5, 0).unwrap()));
    out.push(format!("{:?}", s.stats()));
    out
}

#[test]
fn wire_session_equals_in_process_session() {
    let mut server = start(ServerConfig::default());
    let mut client = WireClient::connect(server.addr()).unwrap();
    let wire = run_script_wire(&mut client);
    client.close().unwrap();
    let local = run_script_local();
    // Same renders, same export blocks, same work counters: the wire
    // and the in-process surface are one API.
    assert_eq!(wire, local);
    server.shutdown();
}

#[test]
fn sixty_four_concurrent_sessions_stay_bit_identical() {
    let mut server = start(ServerConfig {
        max_sessions: 128,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let expected = run_script_local();
    let handles: Vec<_> = (0..64)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr)
                    .unwrap_or_else(|e| panic!("session {i}: connect: {e}"));
                let got = run_script_wire(&mut client);
                assert_eq!(got, expected, "session {i} diverged");
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
    assert_eq!(server.stats().get(mix_obs::Counter::SessionsOpened), 64);
    server.shutdown();
    assert_eq!(server.stats().get(mix_obs::Counter::SessionsClosed), 64);
    assert_eq!(server.live_sessions(), 0);
}

#[test]
fn admission_control_rejects_past_the_cap() {
    let mut server = start(ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    });
    let c1 = WireClient::connect(server.addr()).unwrap();
    let c2 = WireClient::connect(server.addr()).unwrap();
    match WireClient::connect(server.addr()) {
        Err(WireError::Rejected(reason)) => {
            assert!(reason.contains("session limit"), "{reason}")
        }
        Err(other) => panic!("expected rejection, got {other}"),
        Ok(_) => panic!("expected rejection, got a session"),
    }
    assert_eq!(server.stats().get(mix_obs::Counter::SessionsRejected), 1);
    // Closing a session frees the slot.
    c1.close().unwrap();
    // The slot release races with the close reply; retry briefly.
    let mut admitted = None;
    for _ in 0..100 {
        match WireClient::connect(server.addr()) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(WireError::Rejected(_)) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("{e}"),
        }
    }
    let c4 = admitted.expect("slot freed by close");
    c4.close().unwrap();
    c2.close().unwrap();
    server.shutdown();
}

#[test]
fn node_budget_rejects_new_queries_not_navigation() {
    let mut server = start(ServerConfig {
        node_budget: 2, // Q1 materializes more nodes than this
        ..ServerConfig::default()
    });
    let mut client = WireClient::connect(server.addr()).unwrap();
    // The first query is admitted (budget is checked at admission, so
    // a fresh session can always start working)...
    let p0 = client.query(Q1).unwrap();
    // ...and navigation keeps working even once the budget is spent.
    let p1 = client.d(p0).unwrap().unwrap();
    assert_eq!(client.fl(p1).unwrap().unwrap().as_str(), "CustRec");
    assert!(!client.render(p1).unwrap().is_empty());
    // But new result-creating commands are refused with a clean error.
    match client.query(Q1) {
        Err(WireError::Mix(MixError::Plan(msg))) => {
            assert!(msg.contains("budget"), "{msg}")
        }
        other => panic!("expected budget rejection, got {other:?}"),
    }
    match client.q(Q2, p0) {
        Err(WireError::Mix(MixError::Plan(msg))) => {
            assert!(msg.contains("budget"), "{msg}")
        }
        other => panic!("expected budget rejection, got {other:?}"),
    }
    // The session survived both rejections.
    assert!(client.child_count(p0).unwrap() > 0);
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn stale_handles_over_the_wire_answer_plan_errors() {
    let mut server = start(ServerConfig::default());
    let mut client = WireClient::connect(server.addr()).unwrap();
    // Forged handles: a result the session never produced, then a node
    // id past anything materialized.
    match client.fl(WireNode { result: 5, node: 0 }) {
        Err(WireError::Mix(MixError::Plan(msg))) => assert!(msg.contains("result"), "{msg}"),
        other => panic!("expected Plan error, got {other:?}"),
    }
    let p0 = client.query(Q1).unwrap();
    match client.d(WireNode {
        result: p0.result,
        node: 1_000_000,
    }) {
        Err(WireError::Mix(MixError::Plan(msg))) => assert!(msg.contains("node"), "{msg}"),
        other => panic!("expected Plan error, got {other:?}"),
    }
    // The session is still usable.
    assert!(client.d(p0).unwrap().is_some());
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn version_mismatch_is_rejected_at_handshake() {
    let mut server = start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // A well-formed frame claiming a future protocol version: encode
    // Hello{v+1} under the current framing by patching the body byte
    // (the version *field*), not the envelope byte (which the codec
    // itself guards).
    let mut bytes = Frame::Hello {
        version: PROTO_VERSION,
    }
    .encode();
    let last = bytes.len() - 1;
    bytes[last] = PROTO_VERSION + 1;
    use std::io::Write;
    stream.write_all(&bytes).unwrap();
    match read_frame(&mut stream).unwrap() {
        Some((Frame::Reject { reason }, _)) => {
            assert!(reason.contains("version"), "{reason}")
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn idle_sessions_are_closed_with_bye() {
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        },
        fig2_factory(PrefetchPolicy::Off),
    )
    .unwrap();
    let mut client = WireClient::connect(server.addr()).unwrap();
    // Say nothing; the server should Bye us out.
    client.wait_server_close().unwrap();
    server.shutdown();
    assert_eq!(server.stats().get(mix_obs::Counter::SessionsClosed), 1);
}

#[test]
fn graceful_shutdown_drains_sessions_and_joins_prefetchers() {
    let before = active_prefetchers();
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        fig2_factory(PrefetchPolicy::Depth(2)),
    )
    .unwrap();
    // A few live sessions mid-work, with prefetching sessions among
    // them.
    let mut clients: Vec<WireClient> = (0..4)
        .map(|_| WireClient::connect(server.addr()).unwrap())
        .collect();
    for c in &mut clients {
        let p0 = c.query(Q1).unwrap();
        assert!(c.d(p0).unwrap().is_some());
    }
    server.shutdown();
    // Every worker joined: no session is live, open == closed, and no
    // prefetcher thread leaked.
    assert_eq!(server.live_sessions(), 0);
    assert_eq!(
        server.stats().get(mix_obs::Counter::SessionsOpened),
        server.stats().get(mix_obs::Counter::SessionsClosed)
    );
    assert_eq!(active_prefetchers(), before, "leaked prefetcher threads");
    // Clients see a clean Bye (or a closed socket), not a hang.
    for mut c in clients {
        let _ = c.wait_server_close();
    }
}

/// A factory whose mediators share one plan cache (and, implicitly,
/// the process-wide prefetch pool when `prefetch` is on). The catalog
/// is built once and *cloned* per session: cached plans are keyed by
/// backend identity (stable across clones, distinct across independent
/// `fig2_catalog()` calls), so sessions share templates only when they
/// front the same database — exactly a real server's shape.
fn shared_factory(
    shared: &Arc<SharedPlanCache>,
    prefetch: PrefetchPolicy,
) -> Arc<dyn Fn() -> Mediator + Send + Sync> {
    let shared = Arc::clone(shared);
    let (cat, _db) = fig2_catalog();
    Arc::new(move || {
        let cat = cat.clone();
        Mediator::with_options(
            cat,
            MediatorOptions::builder()
                .access(AccessMode::Lazy)
                .optimize(true)
                .prefetch(prefetch)
                .shared_plan_cache(Arc::clone(&shared))
                .build(),
        )
    })
}

/// One script pass over the wire, *without* the stats line (cache
/// hit/miss and prefetch counters legitimately differ when a session
/// rides plans another session compiled).
fn run_pass_wire(client: &mut WireClient) -> Vec<String> {
    let mut out = run_script_wire(client);
    out.pop();
    out
}

#[test]
fn shared_state_sessions_match_the_serial_baseline() {
    // The tentpole equivalence pin: N concurrent sessions over a
    // *shared* plan cache and the pooled prefetch executor produce
    // bit-for-bit the renders/exports of a cold serial session. Shared
    // state may change who compiles a plan — never what it computes.
    let shared = Arc::new(SharedPlanCache::default());
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 64,
            ..ServerConfig::default()
        },
        shared_factory(&shared, PrefetchPolicy::Depth(2)),
    )
    .unwrap();
    let addr = server.addr();
    // Baseline: one serial in-process session (private cache, no
    // prefetch) running the script twice — result-root names embed
    // session-local result indices, so pass 1 has its own baseline.
    let expected: Vec<Vec<String>> = {
        let m = fig2_factory(PrefetchPolicy::Off)();
        let mut s = m.session();
        (0..2)
            .map(|_| {
                let mut out = Vec::new();
                let p0 = s.query(Q1).unwrap();
                let p1 = s.d(p0).unwrap().unwrap();
                out.push(format!("{:?}", s.fl(p1).unwrap()));
                let p4 = s.q(Q2, p0).unwrap();
                let p5 = s.d(p4).unwrap().unwrap();
                out.push(s.render(p5));
                let p9 = s.q(Q3, p5).unwrap();
                out.push(s.child_count(p9).unwrap().to_string());
                out.push(s.render(p9));
                out.push(format!("{:?}", s.export(p5, 0).unwrap()));
                out
            })
            .collect()
    };
    // A serial warm-up session compiles every query class first, so
    // the concurrent fleet's reuse below is deterministic, not a race.
    {
        let mut warm = WireClient::connect(addr).unwrap();
        for (pass, want) in expected.iter().enumerate() {
            assert_eq!(&run_pass_wire(&mut warm), want, "warm-up pass {pass}");
        }
        warm.close().unwrap();
    }
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr)
                    .unwrap_or_else(|e| panic!("session {i}: connect: {e}"));
                // Two passes per session, interleaved with the other
                // fifteen sessions' passes.
                for (pass, want) in expected.iter().enumerate() {
                    let got = run_pass_wire(&mut client);
                    assert_eq!(&got, want, "session {i} pass {pass} diverged");
                }
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
    // The cache actually crossed sessions. Only the Q3 issues are
    // cacheable (Q2 targets the result *root*, which composes with the
    // producing plan instead): the warm-up compiled Q3's two
    // templates (one per pass — the target result index differs), and
    // the fleet's 16 x 2 Q3 issues all ride them.
    let stats = shared.stats();
    assert!(
        stats.get(Counter::PlanCacheHits) >= 32,
        "expected cross-session plan reuse, got {} hits / {} misses",
        stats.get(Counter::PlanCacheHits),
        stats.get(Counter::PlanCacheMisses),
    );
    server.shutdown();
    assert_eq!(active_prefetchers(), 0, "leaked pooled prefetch jobs");
}

#[test]
fn sessions_multiplex_over_a_small_worker_pool() {
    // 16 concurrent sessions over 2 session workers: every session
    // completes the full script correctly even though sessions
    // outnumber workers 8:1 — a slow session can occupy at most one
    // worker, and the rest drain through the other.
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 64,
            workers: 2,
            ..ServerConfig::default()
        },
        fig2_factory(PrefetchPolicy::Off),
    )
    .unwrap();
    assert_eq!(server.worker_count(), 2);
    let addr = server.addr();
    let expected = run_script_local();
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr)
                    .unwrap_or_else(|e| panic!("session {i}: connect: {e}"));
                let got = run_script_wire(&mut client);
                assert_eq!(got, expected, "session {i} diverged");
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
    assert_eq!(server.stats().get(Counter::SessionsOpened), 16);
    server.shutdown();
    assert_eq!(server.stats().get(Counter::SessionsClosed), 16);
    assert_eq!(server.live_sessions(), 0);
}

#[test]
fn shared_cache_contention_and_eviction_stay_correct() {
    // A deliberately tiny shared cache (2 shards x 2 entries) under 8
    // sessions each issuing 12 distinct query classes: constant
    // eviction and shard contention, yet every answer stays correct
    // and the cache never exceeds its configured capacity.
    let shared = Arc::new(SharedPlanCache::new(2, 2));
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 64,
            ..ServerConfig::default()
        },
        shared_factory(&shared, PrefetchPolicy::Off),
    )
    .unwrap();
    let addr = server.addr();
    // Distinct WHERE constants make distinct cache keys. The target
    // must be a *non-root* node (a `d`-derived CustRec): queries in
    // place at the result root compose with the producing plan and
    // never touch the cache — only decontextualized issues do.
    let values: Vec<u64> = (1..=12).map(|n| n * 100).collect();
    let class =
        |v: u64| format!("FOR $O IN document(root)/OrderInfo WHERE $O/order/value < {v} RETURN $O");
    let expected: Vec<u64> = {
        let m = fig2_factory(PrefetchPolicy::Off)();
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        values
            .iter()
            .map(|&v| {
                let p = s.q(&class(v), p1).unwrap();
                s.child_count(p).unwrap() as u64
            })
            .collect()
    };
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let values = values.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr)
                    .unwrap_or_else(|e| panic!("session {i}: connect: {e}"));
                let p0 = client.query(Q1).unwrap();
                let p1 = client.d(p0).unwrap().unwrap();
                // Walk the classes in a session-dependent order so
                // shards see interleaved, conflicting access patterns.
                for k in 0..values.len() {
                    let j = (k + i) % values.len();
                    let p = client.q(&class(values[j]), p1).unwrap();
                    assert_eq!(
                        client.child_count(p).unwrap(),
                        expected[j],
                        "session {i} class {j} diverged under eviction"
                    );
                }
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
    assert!(
        shared.len() <= shared.shard_count() * shared.per_shard_cap(),
        "cache overflowed its cap: {} entries",
        shared.len()
    );
    // 96 nested issues over 12 classes that cannot all fit in a
    // 4-entry cache: each class was compiled at least once, and
    // eviction forced recompilations beyond the class count.
    assert!(
        shared.stats().get(Counter::PlanCacheMisses) >= 12,
        "hits {} misses {} contention {} len {}",
        shared.stats().get(Counter::PlanCacheHits),
        shared.stats().get(Counter::PlanCacheMisses),
        shared.stats().get(Counter::PlanCacheShardContention),
        shared.len(),
    );
    server.shutdown();
}

#[test]
fn pooled_prefetch_survives_server_shutdown_without_leaks() {
    // The pool-shutdown leak pin: sessions are abandoned mid-prefetch
    // (results half-read, rings full), the server shuts down, and the
    // process-wide prefetch gauge still lands exactly where it began —
    // cancellation reclaims every pooled job, not just happy-path ones.
    let before = active_prefetchers();
    let shared = Arc::new(SharedPlanCache::default());
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 64,
            workers: 3,
            ..ServerConfig::default()
        },
        shared_factory(&shared, PrefetchPolicy::Depth(2)),
    )
    .unwrap();
    let mut clients: Vec<WireClient> = (0..8)
        .map(|_| WireClient::connect(server.addr()).unwrap())
        .collect();
    for c in &mut clients {
        // Start the query and navigate just far enough to arm the
        // prefetchers, then abandon the session without closing.
        let p0 = c.query(Q1).unwrap();
        assert!(c.d(p0).unwrap().is_some());
    }
    server.shutdown();
    assert_eq!(server.live_sessions(), 0);
    assert_eq!(
        active_prefetchers(),
        before,
        "pooled prefetch jobs leaked past shutdown"
    );
    for mut c in clients {
        let _ = c.wait_server_close();
    }
}

#[test]
fn raw_command_frames_and_byte_counters() {
    // Drive the protocol without WireClient to pin the frame-level
    // contract, and check the server's byte accounting moves.
    let mut server = start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTO_VERSION,
        },
    )
    .unwrap();
    let (welcome, _) = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(welcome, Frame::Welcome { .. }), "{welcome:?}");
    write_frame(&mut stream, &Frame::Cmd(Command::Query { text: Q1.into() })).unwrap();
    match read_frame(&mut stream).unwrap().unwrap() {
        (Frame::Rep(Reply::Node(n)), _) => assert_eq!(n.result, 0),
        (other, _) => panic!("expected Node reply, got {other:?}"),
    }
    // Export from the root: one row per CustRec, col 1 is the label.
    write_frame(
        &mut stream,
        &Frame::Cmd(Command::Export {
            p: WireNode { result: 0, node: 0 },
            max_rows: 0,
        }),
    )
    .unwrap();
    match read_frame(&mut stream).unwrap().unwrap() {
        (Frame::Rep(Reply::Block(b)), _) => {
            assert_eq!(b.len(), 2);
            assert_eq!(b.value_at(0, 1), Value::str("CustRec"));
        }
        (other, _) => panic!("expected Block reply, got {other:?}"),
    }
    write_frame(&mut stream, &Frame::Bye).unwrap();
    let (bye, _) = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(bye, Frame::Bye));
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.get(mix_obs::Counter::WireCommands), 2);
    assert!(stats.get(mix_obs::Counter::WireBytesIn) > 0);
    assert!(stats.get(mix_obs::Counter::WireBytesOut) > 0);
}

/// A tracer that panics on the first span — the vehicle for a session
/// whose very first command blows up inside the engine.
struct PanickingTracer;

impl mix_obs::Tracer for PanickingTracer {
    fn span_start(
        &self,
        _name: &str,
        _parent: Option<mix_obs::SpanId>,
        _attrs: &[(&'static str, String)],
    ) -> mix_obs::SpanId {
        panic!("deliberate tracer panic (test)");
    }
    fn span_end(&self, _id: mix_obs::SpanId, _attrs: &[(&'static str, String)]) {}
    fn event(
        &self,
        _parent: Option<mix_obs::SpanId>,
        _name: &str,
        _attrs: &[(&'static str, String)],
    ) {
    }
}

/// One deliberately-panicking session must cost only itself: with a
/// single worker thread (the worst case — the panicking batch and every
/// other session share one thread and all the pool locks), sessions
/// before and after it keep serving, and shutdown stays clean.
#[test]
fn panicking_session_leaves_others_serving() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = Arc::new(AtomicUsize::new(0));
    let factory: Arc<dyn Fn() -> Mediator + Send + Sync> = Arc::new(move || {
        let (cat, _db) = fig2_catalog();
        let nth = n.fetch_add(1, Ordering::SeqCst);
        let mut b = MediatorOptions::builder()
            .access(AccessMode::Lazy)
            .optimize(true);
        if nth == 1 {
            // Second session gets the poisoned pill.
            b = b.tracer(mix_obs::TracerHandle::new(Arc::new(PanickingTracer)));
        }
        Mediator::with_options(cat, b.build())
    });
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        factory,
    )
    .expect("bind");
    let addr = server.addr();

    let mut healthy = WireClient::connect(addr).expect("c1 connect");
    assert!(matches!(
        healthy.query(Q1).expect("c1 query"),
        WireNode { result: 0, node: 0 }
    ));

    // The doomed session: its first Query panics inside dispatch. The
    // server reports the panic as an error reply (or drops the
    // connection) — either way the *client* sees an error, not a hang,
    // and the server survives.
    let mut doomed = WireClient::connect(addr).expect("c2 connect");
    match doomed.query(Q1) {
        Err(_) => {}
        Ok(n) => panic!("doomed session should not serve, got {n:?}"),
    }

    // The first session keeps working on the same (sole) worker thread…
    let d = healthy.d(WireNode { result: 0, node: 0 }).unwrap().unwrap();
    assert_eq!(
        healthy.fl(d).unwrap().map(|n| n.to_string()),
        Some("CustRec".to_string())
    );

    // …and brand-new sessions still open.
    let mut late = WireClient::connect(addr).expect("c3 connect");
    late.query(Q1).expect("c3 query");
    late.close().ok();
    healthy.close().ok();

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.get(Counter::SessionsOpened), 3);
    assert_eq!(
        stats.get(Counter::SessionsOpened),
        stats.get(Counter::SessionsClosed),
        "every session (panicking one included) must release its slot"
    );
}
