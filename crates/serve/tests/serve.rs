//! The serve suite: lifecycle, admission control, budget, stale
//! handles, idle timeout, graceful shutdown, and the wire-vs-in-process
//! equivalence pin.

use mix_common::{MixError, PrefetchPolicy, Value};
use mix_engine::AccessMode;
use mix_proto::{read_frame, write_frame, Command, Frame, Reply, WireNode, PROTO_VERSION};
use mix_qdom::{Mediator, MediatorOptions};
use mix_relational::active_prefetchers;
use mix_serve::{Server, ServerConfig, WireClient, WireError};
use mix_wrapper::fig2_catalog;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

const Q2: &str = "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"E\" RETURN $P";

const Q3: &str = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O";

fn fig2_factory(prefetch: PrefetchPolicy) -> Arc<dyn Fn() -> Mediator + Send + Sync> {
    Arc::new(move || {
        let (cat, _db) = fig2_catalog();
        Mediator::with_options(
            cat,
            MediatorOptions::builder()
                .access(AccessMode::Lazy)
                .optimize(true)
                .prefetch(prefetch)
                .build(),
        )
    })
}

fn start(config: ServerConfig) -> Server {
    Server::start("127.0.0.1:0", config, fig2_factory(PrefetchPolicy::Off)).expect("bind")
}

/// The paper's Example 2.1 as a wire script; returns every observable
/// (labels, renders, counters) for comparison.
fn run_script_wire(client: &mut WireClient) -> Vec<String> {
    let mut out = Vec::new();
    let p0 = client.query(Q1).unwrap();
    let p1 = client.d(p0).unwrap().unwrap();
    out.push(format!("{:?}", client.fl(p1).unwrap()));
    let p4 = client.q(Q2, p0).unwrap();
    let p5 = client.d(p4).unwrap().unwrap();
    out.push(client.render(p5).unwrap());
    let p9 = client.q(Q3, p5).unwrap();
    out.push(client.child_count(p9).unwrap().to_string());
    out.push(client.render(p9).unwrap());
    out.push(format!("{:?}", client.export(p5, 0).unwrap()));
    out.push(format!("{:?}", client.stats().unwrap()));
    out
}

/// The same script in-process, via the named wrappers (which route
/// through the same `dispatch`).
fn run_script_local() -> Vec<String> {
    let m = fig2_factory(PrefetchPolicy::Off)();
    let mut s = m.session();
    let mut out = Vec::new();
    let p0 = s.query(Q1).unwrap();
    let p1 = s.d(p0).unwrap().unwrap();
    out.push(format!("{:?}", s.fl(p1).unwrap()));
    let p4 = s.q(Q2, p0).unwrap();
    let p5 = s.d(p4).unwrap().unwrap();
    out.push(s.render(p5));
    let p9 = s.q(Q3, p5).unwrap();
    out.push(s.child_count(p9).unwrap().to_string());
    out.push(s.render(p9));
    out.push(format!("{:?}", s.export(p5, 0).unwrap()));
    out.push(format!("{:?}", s.stats()));
    out
}

#[test]
fn wire_session_equals_in_process_session() {
    let mut server = start(ServerConfig::default());
    let mut client = WireClient::connect(server.addr()).unwrap();
    let wire = run_script_wire(&mut client);
    client.close().unwrap();
    let local = run_script_local();
    // Same renders, same export blocks, same work counters: the wire
    // and the in-process surface are one API.
    assert_eq!(wire, local);
    server.shutdown();
}

#[test]
fn sixty_four_concurrent_sessions_stay_bit_identical() {
    let mut server = start(ServerConfig {
        max_sessions: 128,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let expected = run_script_local();
    let handles: Vec<_> = (0..64)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr)
                    .unwrap_or_else(|e| panic!("session {i}: connect: {e}"));
                let got = run_script_wire(&mut client);
                assert_eq!(got, expected, "session {i} diverged");
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }
    assert_eq!(server.stats().get(mix_obs::Counter::SessionsOpened), 64);
    server.shutdown();
    assert_eq!(server.stats().get(mix_obs::Counter::SessionsClosed), 64);
    assert_eq!(server.live_sessions(), 0);
}

#[test]
fn admission_control_rejects_past_the_cap() {
    let mut server = start(ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    });
    let c1 = WireClient::connect(server.addr()).unwrap();
    let c2 = WireClient::connect(server.addr()).unwrap();
    match WireClient::connect(server.addr()) {
        Err(WireError::Rejected(reason)) => {
            assert!(reason.contains("session limit"), "{reason}")
        }
        Err(other) => panic!("expected rejection, got {other}"),
        Ok(_) => panic!("expected rejection, got a session"),
    }
    assert_eq!(server.stats().get(mix_obs::Counter::SessionsRejected), 1);
    // Closing a session frees the slot.
    c1.close().unwrap();
    // The slot release races with the close reply; retry briefly.
    let mut admitted = None;
    for _ in 0..100 {
        match WireClient::connect(server.addr()) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(WireError::Rejected(_)) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("{e}"),
        }
    }
    let c4 = admitted.expect("slot freed by close");
    c4.close().unwrap();
    c2.close().unwrap();
    server.shutdown();
}

#[test]
fn node_budget_rejects_new_queries_not_navigation() {
    let mut server = start(ServerConfig {
        node_budget: 2, // Q1 materializes more nodes than this
        ..ServerConfig::default()
    });
    let mut client = WireClient::connect(server.addr()).unwrap();
    // The first query is admitted (budget is checked at admission, so
    // a fresh session can always start working)...
    let p0 = client.query(Q1).unwrap();
    // ...and navigation keeps working even once the budget is spent.
    let p1 = client.d(p0).unwrap().unwrap();
    assert_eq!(client.fl(p1).unwrap().unwrap().as_str(), "CustRec");
    assert!(!client.render(p1).unwrap().is_empty());
    // But new result-creating commands are refused with a clean error.
    match client.query(Q1) {
        Err(WireError::Mix(MixError::Plan(msg))) => {
            assert!(msg.contains("budget"), "{msg}")
        }
        other => panic!("expected budget rejection, got {other:?}"),
    }
    match client.q(Q2, p0) {
        Err(WireError::Mix(MixError::Plan(msg))) => {
            assert!(msg.contains("budget"), "{msg}")
        }
        other => panic!("expected budget rejection, got {other:?}"),
    }
    // The session survived both rejections.
    assert!(client.child_count(p0).unwrap() > 0);
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn stale_handles_over_the_wire_answer_plan_errors() {
    let mut server = start(ServerConfig::default());
    let mut client = WireClient::connect(server.addr()).unwrap();
    // Forged handles: a result the session never produced, then a node
    // id past anything materialized.
    match client.fl(WireNode { result: 5, node: 0 }) {
        Err(WireError::Mix(MixError::Plan(msg))) => assert!(msg.contains("result"), "{msg}"),
        other => panic!("expected Plan error, got {other:?}"),
    }
    let p0 = client.query(Q1).unwrap();
    match client.d(WireNode {
        result: p0.result,
        node: 1_000_000,
    }) {
        Err(WireError::Mix(MixError::Plan(msg))) => assert!(msg.contains("node"), "{msg}"),
        other => panic!("expected Plan error, got {other:?}"),
    }
    // The session is still usable.
    assert!(client.d(p0).unwrap().is_some());
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn version_mismatch_is_rejected_at_handshake() {
    let mut server = start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // A well-formed frame claiming a future protocol version: encode
    // Hello{v+1} under the current framing by patching the body byte
    // (the version *field*), not the envelope byte (which the codec
    // itself guards).
    let mut bytes = Frame::Hello {
        version: PROTO_VERSION,
    }
    .encode();
    let last = bytes.len() - 1;
    bytes[last] = PROTO_VERSION + 1;
    use std::io::Write;
    stream.write_all(&bytes).unwrap();
    match read_frame(&mut stream).unwrap() {
        Some((Frame::Reject { reason }, _)) => {
            assert!(reason.contains("version"), "{reason}")
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn idle_sessions_are_closed_with_bye() {
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        },
        fig2_factory(PrefetchPolicy::Off),
    )
    .unwrap();
    let mut client = WireClient::connect(server.addr()).unwrap();
    // Say nothing; the server should Bye us out.
    client.wait_server_close().unwrap();
    server.shutdown();
    assert_eq!(server.stats().get(mix_obs::Counter::SessionsClosed), 1);
}

#[test]
fn graceful_shutdown_drains_sessions_and_joins_prefetchers() {
    let before = active_prefetchers();
    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        fig2_factory(PrefetchPolicy::Depth(2)),
    )
    .unwrap();
    // A few live sessions mid-work, with prefetching sessions among
    // them.
    let mut clients: Vec<WireClient> = (0..4)
        .map(|_| WireClient::connect(server.addr()).unwrap())
        .collect();
    for c in &mut clients {
        let p0 = c.query(Q1).unwrap();
        assert!(c.d(p0).unwrap().is_some());
    }
    server.shutdown();
    // Every worker joined: no session is live, open == closed, and no
    // prefetcher thread leaked.
    assert_eq!(server.live_sessions(), 0);
    assert_eq!(
        server.stats().get(mix_obs::Counter::SessionsOpened),
        server.stats().get(mix_obs::Counter::SessionsClosed)
    );
    assert_eq!(active_prefetchers(), before, "leaked prefetcher threads");
    // Clients see a clean Bye (or a closed socket), not a hang.
    for mut c in clients {
        let _ = c.wait_server_close();
    }
}

#[test]
fn raw_command_frames_and_byte_counters() {
    // Drive the protocol without WireClient to pin the frame-level
    // contract, and check the server's byte accounting moves.
    let mut server = start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTO_VERSION,
        },
    )
    .unwrap();
    let (welcome, _) = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(welcome, Frame::Welcome { .. }), "{welcome:?}");
    write_frame(&mut stream, &Frame::Cmd(Command::Query { text: Q1.into() })).unwrap();
    match read_frame(&mut stream).unwrap().unwrap() {
        (Frame::Rep(Reply::Node(n)), _) => assert_eq!(n.result, 0),
        (other, _) => panic!("expected Node reply, got {other:?}"),
    }
    // Export from the root: one row per CustRec, col 1 is the label.
    write_frame(
        &mut stream,
        &Frame::Cmd(Command::Export {
            p: WireNode { result: 0, node: 0 },
            max_rows: 0,
        }),
    )
    .unwrap();
    match read_frame(&mut stream).unwrap().unwrap() {
        (Frame::Rep(Reply::Block(b)), _) => {
            assert_eq!(b.len(), 2);
            assert_eq!(b.value_at(0, 1), Value::str("CustRec"));
        }
        (other, _) => panic!("expected Block reply, got {other:?}"),
    }
    write_frame(&mut stream, &Frame::Bye).unwrap();
    let (bye, _) = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(bye, Frame::Bye));
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.get(mix_obs::Counter::WireCommands), 2);
    assert!(stats.get(mix_obs::Counter::WireBytesIn) > 0);
    assert!(stats.get(mix_obs::Counter::WireBytesOut) > 0);
}
