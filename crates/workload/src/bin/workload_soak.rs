//! Served-mode soak driver.
//!
//! ```text
//! cargo run --release -p mix-workload --bin workload_soak            # full run, writes BENCH_soak.json
//! cargo run --release -p mix-workload --bin workload_soak -- --smoke # ~12s CI smoke, no JSON
//! ```
//!
//! Drives a live `mix-serve` server with concurrent wire sessions
//! under 10% chaos faults and checks counter invariants at quiesce —
//! once over a single unsharded backend and once over a 4-shard hash
//! federation (per-shard chaos schedules, scatter-gather merge); exits
//! nonzero if any invariant fails in either pass.

use mix_workload::{run_soak, SoakConfig, SoakOutcome};
use std::time::Duration;

fn report(label: &str, out: &SoakOutcome) {
    println!(
        "workload_soak[{label}]: {} sessions x {} classes, {} iterations, {} commands in {:?} \
         ({:.0} cmd/s), {} faults injected / {} retries absorbed",
        out.sessions,
        out.classes,
        out.iterations,
        out.commands,
        out.wall,
        out.throughput_cmds_per_s,
        out.faults_injected,
        out.retries_attempted,
    );
    for c in &out.per_class {
        println!(
            "  {:<10} n={:<7} p50={}us p95={}us p99={}us",
            c.class,
            c.count,
            c.p50_ns / 1_000,
            c.p95_ns / 1_000,
            c.p99_ns / 1_000,
        );
    }
    for (class, (b, t, n)) in &out.class_triples {
        println!(
            "  class {class}: conserved triple blocks={b} tuples={t} nodes={n} across all runs"
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = if smoke {
        SoakConfig {
            sessions: 8,
            classes: 3,
            duration: Duration::from_secs(6),
            scale: 30,
            script_len: 24,
            ..SoakConfig::default()
        }
    } else {
        SoakConfig {
            sessions: 32,
            classes: 4,
            duration: Duration::from_secs(30),
            scale: 80,
            script_len: 48,
            ..SoakConfig::default()
        }
    };
    let mut failed = false;
    for shards in [0usize, 4] {
        let cfg = SoakConfig {
            shards,
            // The federation pass is a shorter rider on the full run;
            // in smoke mode both passes share the same short budget.
            duration: if shards > 0 && !smoke {
                Duration::from_secs(15)
            } else {
                base.duration
            },
            ..base.clone()
        };
        let label = if shards == 0 {
            "single".to_string()
        } else {
            format!("sharded-{shards}")
        };
        let out = run_soak(&cfg);
        report(&label, &out);
        if !smoke && shards == 0 {
            let json = out.to_json(&cfg);
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_soak.json");
            std::fs::write(path, json).expect("write BENCH_soak.json");
            println!("wrote {path}");
        }
        if !out.invariant_failures.is_empty() {
            for f in &out.invariant_failures {
                eprintln!("workload_soak[{label}]: INVARIANT FAILED: {f}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("workload_soak: all invariants hold");
}
