//! Knob-matrix equivalence fuzz driver.
//!
//! ```text
//! cargo run --release -p mix-workload --bin workload_fuzz -- [--cases N] [--seed S] [--scale K]
//! ```
//!
//! Fixed-seed and fully deterministic: the same arguments explore the
//! same cases and find the same divergences on every machine — this is
//! what `scripts/check.sh` runs as the 200-case CI smoke. On failure
//! the minimized script, dataset parameters and first differing
//! transcript line are printed, and the process exits nonzero.

use mix_workload::{run_fuzz, FuzzConfig};

fn arg(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| {
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            }
        })
}

fn main() {
    let mut cfg = FuzzConfig::default();
    if let Some(n) = arg("--cases") {
        cfg.cases = n as usize;
    }
    if let Some(s) = arg("--seed") {
        cfg.master_seed = s;
    }
    if let Some(k) = arg("--scale") {
        cfg.scale = k as usize;
    }
    if let Some(l) = arg("--len") {
        cfg.script_len = l as usize;
    }
    let report = run_fuzz(&cfg, 0);
    println!(
        "workload_fuzz: {} cases, {} baseline-vs-variant comparisons, seed {:#x}",
        report.cases, report.comparisons, cfg.master_seed
    );
    if report.failures.is_empty() {
        println!("workload_fuzz: all equivalent");
        return;
    }
    for d in &report.failures {
        eprintln!("{}", d.pretty());
    }
    eprintln!(
        "workload_fuzz: {} divergence(s) — each printed above, minimized",
        report.failures.len()
    );
    std::process::exit(1);
}
