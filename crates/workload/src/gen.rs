//! Seeded workload generation: scaled schema/data families, query
//! templates spanning the Fig. 4 grammar, and mixed
//! navigate/query/decontextualize/export session scripts.
//!
//! Everything here is a pure function of a [`Rng`] seed, so the same
//! seed reproduces the same database, queries, and scripts on every
//! machine — the fuzzer and the soak runner both depend on that.

use mix::prelude::*;

/// SplitMix64 — the same tiny generator the chaos backend uses, local
/// so workload generation never perturbs (or is perturbed by) fault
/// schedules.
#[derive(Debug, Clone)]
pub struct Rng(pub u64);

impl Rng {
    /// Derive an independent stream for sub-task `salt` (case index,
    /// session index) without consuming this stream.
    pub fn split(&self, salt: u64) -> Rng {
        Rng(self
            .0
            .wrapping_add(0x9e3779b97f4a7c15)
            .wrapping_mul(salt.wrapping_mul(2).wrapping_add(1)))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// `true` with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// A uniformly chosen element of `xs`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

// ---- schema families -------------------------------------------------

/// How one relational field is populated — drives both data generation
/// (indirectly, via `mix_repro::datagen`) and plausible constant
/// generation for WHERE clauses.
#[derive(Debug, Clone, Copy)]
pub enum FieldKind {
    /// Text primary key with a printf-style prefix (`C000042`).
    Key { prefix: &'static str, width: usize },
    /// Integer primary key counting from 1.
    IntKey,
    /// Text foreign key referencing the sibling source's `Key`.
    RefKey,
    /// Integer uniform in `[lo, hi)`.
    Int { lo: i64, hi: i64 },
    /// Float in `{0.1, 0.2, …, 1.9}` (the auction `afspeed` shape).
    Float,
    /// One of a fixed pool of strings.
    Pool(&'static [&'static str]),
    /// `gen_db`-style names spread across the alphabet (`A0Co.`).
    NamePrefix,
}

/// One wrapped relational source: its catalog name, the element label
/// its rows appear under, and its fields in schema order.
#[derive(Debug, Clone, Copy)]
pub struct SourceShape {
    /// Catalog source name (`root1`, `cameras`, …).
    pub source: &'static str,
    /// Per-row element label (`customer`, `camera`, …).
    pub elem: &'static str,
    /// Fields in schema order.
    pub fields: &'static [(&'static str, FieldKind)],
}

const CITIES: &[&str] = &["LosAngeles", "NewYork", "SanDiego", "Austin"];
const REGIONS: &[&str] = &["SoCal", "NorCal", "PNW", "East", "Midwest"];

const CUSTOMER: SourceShape = SourceShape {
    source: "root1",
    elem: "customer",
    fields: &[
        (
            "id",
            FieldKind::Key {
                prefix: "C",
                width: 6,
            },
        ),
        ("addr", FieldKind::Pool(CITIES)),
        ("name", FieldKind::NamePrefix),
    ],
};

const ORDER: SourceShape = SourceShape {
    source: "root2",
    elem: "order",
    fields: &[
        ("orid", FieldKind::IntKey),
        ("cid", FieldKind::RefKey),
        ("value", FieldKind::Int { lo: 0, hi: 100_000 }),
    ],
};

const CAMERA: SourceShape = SourceShape {
    source: "cameras",
    elem: "camera",
    fields: &[
        (
            "id",
            FieldKind::Key {
                prefix: "CAM",
                width: 5,
            },
        ),
        ("model", FieldKind::NamePrefix),
        ("price", FieldKind::Int { lo: 50, hi: 2000 }),
        ("afspeed", FieldKind::Float),
        ("rating", FieldKind::Int { lo: 0, hi: 3 }),
    ],
};

const LENS: SourceShape = SourceShape {
    source: "lenses",
    elem: "lens",
    fields: &[
        (
            "id",
            FieldKind::Key {
                prefix: "LENS",
                width: 6,
            },
        ),
        ("camid", FieldKind::RefKey),
        ("cost", FieldKind::Int { lo: 20, hi: 800 }),
        ("diameter", FieldKind::Int { lo: 5, hi: 30 }),
        ("region", FieldKind::Pool(REGIONS)),
    ],
};

/// The two scaled schema/data families (TPC-H/XMark-style analogues
/// seeded from `mix_repro::datagen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The paper's customers/orders schema (`root1`/`root2`).
    CustomersOrders,
    /// The introduction's auction scenario (`cameras`/`lenses`).
    Auction,
}

/// A schema family at a concrete scale: `primary` rows in the keyed
/// source, `per` rows each in the referencing source.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    pub family: Family,
    /// Rows in the keyed source (customers / cameras).
    pub primary: usize,
    /// Referencing rows per keyed row (orders per customer / lenses
    /// per camera).
    pub per: usize,
    /// Data seed (orthogonal to the query/script seed).
    pub seed: u64,
}

impl Dataset {
    /// A dataset drawn from `rng` at roughly `scale` keyed rows.
    pub fn gen(rng: &mut Rng, scale: usize) -> Dataset {
        let family = if rng.chance(50) {
            Family::CustomersOrders
        } else {
            Family::Auction
        };
        // ~1 case in 8 is degenerate — a single keyed row and/or an
        // empty referencing source — because empty joins, empty groups,
        // and zero-row blocks are classic divergence territory.
        let primary = if rng.chance(12) {
            1
        } else {
            scale.max(2) / 2 + rng.below(scale.max(2) as u64 / 2 + 1) as usize
        };
        Dataset {
            family,
            primary,
            per: rng.below(4) as usize,
            seed: rng.next_u64(),
        }
    }

    /// Build the catalog + database (deterministic in `self.seed`).
    pub fn build(&self) -> (Catalog, Database) {
        match self.family {
            Family::CustomersOrders => {
                mix_repro::datagen::customers_orders(self.primary, self.per, self.seed)
            }
            Family::Auction => mix_repro::datagen::auction_db(self.primary, self.per, self.seed),
        }
    }

    /// Build the same data as a sharded federation under `layout`
    /// (keyed source by its key, referencing source co-partitioned by
    /// its foreign key). Results must be bit-for-bit identical to
    /// [`Dataset::build`] — the fuzzer's federation variants pin that.
    pub fn build_sharded(
        &self,
        layout: mix_repro::datagen::ShardLayout,
    ) -> (Catalog, ShardedDatabase) {
        match self.family {
            Family::CustomersOrders => mix_repro::datagen::customers_orders_sharded(
                self.primary,
                self.per,
                self.seed,
                layout,
            ),
            Family::Auction => {
                mix_repro::datagen::auction_db_sharded(self.primary, self.per, self.seed, layout)
            }
        }
    }

    /// The keyed source (join build side).
    pub fn keyed(&self) -> SourceShape {
        match self.family {
            Family::CustomersOrders => CUSTOMER,
            Family::Auction => CAMERA,
        }
    }

    /// The referencing source (join probe side).
    pub fn referencing(&self) -> SourceShape {
        match self.family {
            Family::CustomersOrders => ORDER,
            Family::Auction => LENS,
        }
    }

    /// Name of the key field in [`Dataset::keyed`].
    pub fn key_field(&self) -> &'static str {
        match self.family {
            Family::CustomersOrders => "id",
            Family::Auction => "id",
        }
    }

    /// Name of the reference field in [`Dataset::referencing`].
    pub fn ref_field(&self) -> &'static str {
        match self.family {
            Family::CustomersOrders => "cid",
            Family::Auction => "camid",
        }
    }

    /// A plausible constant for `kind`, rendered as an XQuery literal
    /// (strings quoted, numbers bare). Constants land inside, at the
    /// edge of, or just outside the data range, so predicates have
    /// varied selectivity including empty.
    pub fn literal(&self, rng: &mut Rng, kind: FieldKind) -> String {
        match kind {
            FieldKind::Key { prefix, width } => {
                let k = rng.below(self.primary as u64 + 2);
                format!("\"{prefix}{k:0width$}\"")
            }
            FieldKind::IntKey => format!("{}", 1 + rng.below((self.primary * self.per) as u64 + 1)),
            FieldKind::RefKey => {
                let keyed = self.keyed();
                let (_, kind) = keyed.fields[0];
                self.literal(rng, kind)
            }
            FieldKind::Int { lo, hi } => {
                let span = (hi - lo).max(1) as u64;
                // Sometimes outside the range for empty/full answers.
                let v = lo - 1 + rng.below(span + 2) as i64;
                format!("{v}")
            }
            FieldKind::Float => format!("{:.1}", (1 + rng.below(19)) as f64 / 10.0),
            FieldKind::Pool(pool) => format!("\"{}\"", rng.pick(pool)),
            FieldKind::NamePrefix => {
                format!("\"{}\"", (b'A' + rng.below(26) as u8) as char)
            }
        }
    }
}

// ---- query templates -------------------------------------------------

/// A generated query plus the result-shape metadata in-place queries
/// need: which element labels appear as children of the result root,
/// and which source element sits under each.
#[derive(Debug, Clone)]
pub struct GenQuery {
    pub text: String,
    /// `(root_child_label, inner_elem)` pairs: each result-root child
    /// carries `root_child_label` and contains an `inner_elem` row
    /// element somewhere below (the anchor for in-place WHERE paths).
    pub shape: Vec<(String, &'static str)>,
}

const COMPARES: &[&str] = &["=", "!=", "<", "<=", ">", ">="];

/// One WHERE conjunct `$var/field/data() OP literal` over `shape`.
fn conjunct(rng: &mut Rng, ds: &Dataset, var: &str, shape: &SourceShape) -> String {
    let (field, kind) = *rng.pick(shape.fields);
    let op = *rng.pick(COMPARES);
    // ~1 in 10: a literal of a *different* type than the field (string
    // vs int column, float vs string…). Incomparable operands must be
    // uniformly false across the row path, the vectorized kernels, and
    // SQL pushdown.
    let lit_kind = if rng.chance(10) {
        rng.pick(shape.fields).1
    } else {
        kind
    };
    let lit = ds.literal(rng, lit_kind);
    if rng.chance(10) {
        // Path-vs-path: both operands are field paths of the same row.
        let (f2, _) = *rng.pick(shape.fields);
        return format!("${var}/{field}/data() {op} ${var}/{f2}/data()");
    }
    if rng.chance(15) {
        // Wildcard step: any field's data.
        format!("${var}/*/data() {op} {lit}")
    } else if rng.chance(20) {
        // Bare path (no data()) — the Fig. 4 grammar allows comparing
        // an element path against a constant directly.
        format!("${var}/{field} {op} {lit}")
    } else {
        format!("${var}/{field}/data() {op} {lit}")
    }
}

/// `WHERE c1 [AND c2 …]` with 0–2 conjuncts ("" when none).
fn where_clause(rng: &mut Rng, ds: &Dataset, var: &str, shape: &SourceShape) -> String {
    match rng.below(3) {
        0 => String::new(),
        1 => format!(" WHERE {}", conjunct(rng, ds, var, shape)),
        _ => format!(
            " WHERE {} AND {}",
            conjunct(rng, ds, var, shape),
            conjunct(rng, ds, var, shape)
        ),
    }
}

/// A generated top-level query over `ds`, spanning the Fig. 4 grammar:
/// joins, single-source scans, nested subqueries, wildcard paths,
/// grouped element construction, and bare-variable returns.
pub fn gen_top_query(rng: &mut Rng, ds: &Dataset) -> GenQuery {
    let keyed = ds.keyed();
    let refing = ds.referencing();
    let n = rng.below(1000); // tag salt, so repeated classes still dedup
    match rng.below(13) {
        // Join with wrapped construction — the Q1 shape. 1 in 5 is a
        // theta join (non-equality key comparison), which cannot use
        // the hash-join path at all.
        0..=3 => {
            let jop = if rng.chance(20) {
                *rng.pick(COMPARES)
            } else {
                "="
            };
            let extra = if rng.chance(40) {
                format!(" AND {}", conjunct(rng, ds, "B", &refing))
            } else {
                String::new()
            };
            let text = format!(
                "FOR $A IN source(&{ks})/{ke} $B IN document(&{rs})/{re} \
                 WHERE $A/{key}/data() {jop} $B/{rf}/data(){extra} \
                 RETURN <Rec{n}> $A <Sub{n}> $B </Sub{n}> {{$B}} </Rec{n}> {{$A}}",
                ks = keyed.source,
                ke = keyed.elem,
                rs = refing.source,
                re = refing.elem,
                key = ds.key_field(),
                rf = ds.ref_field(),
            );
            GenQuery {
                text,
                shape: vec![(format!("Rec{n}"), keyed.elem)],
            }
        }
        // Single-source scan returning the bare row variable.
        4..=5 => {
            let s = if rng.chance(50) { keyed } else { refing };
            let wh = where_clause(rng, ds, "A", &s);
            let text = format!(
                "FOR $A IN source(&{src})/{e}{wh} RETURN $A",
                src = s.source,
                e = s.elem,
            );
            GenQuery {
                text,
                shape: vec![(s.elem.to_string(), s.elem)],
            }
        }
        // Single-source scan with grouped element construction.
        6..=7 => {
            let s = if rng.chance(50) { keyed } else { refing };
            let wh = where_clause(rng, ds, "A", &s);
            let text = format!(
                "FOR $A IN document({src})/{e}{wh} \
                 RETURN <Wrap{n}> $A </Wrap{n}> {{$A}}",
                src = s.source,
                e = s.elem,
            );
            GenQuery {
                text,
                shape: vec![(format!("Wrap{n}"), s.elem)],
            }
        }
        // Nested subquery (correlated FOR inside the element body).
        8 => {
            let text = format!(
                "FOR $A IN document({ks})/{ke} \
                 RETURN <Rec{n}> $A \
                 FOR $B IN document({rs})/{re} \
                 WHERE $B/{rf}/data() = $A/{key}/data() \
                 RETURN <Inner{n}> $B </Inner{n}> {{$B}} \
                 </Rec{n}> {{$A}}",
                ks = keyed.source,
                ke = keyed.elem,
                rs = refing.source,
                re = refing.elem,
                key = ds.key_field(),
                rf = ds.ref_field(),
            );
            GenQuery {
                text,
                shape: vec![(format!("Rec{n}"), keyed.elem)],
            }
        }
        // Dependent binding: the inner variable ranges over a path
        // rooted at the outer variable (Fig. 4's `$B IN $A/y` form).
        9..=10 => {
            let s = if rng.chance(50) { keyed } else { refing };
            let (field, _) = *rng.pick(s.fields);
            let step = if rng.chance(30) { "*" } else { field };
            let text = format!(
                "FOR $A IN document({src})/{e} $B IN $A/{step} \
                 RETURN <Kid{n}> $A <F{n}> $B </F{n}> {{$B}} </Kid{n}> {{$A}}",
                src = s.source,
                e = s.elem,
            );
            GenQuery {
                text,
                shape: vec![(format!("Kid{n}"), s.elem)],
            }
        }
        // Flat pair grouping: both variables in one group-by list.
        11 => {
            let text = format!(
                "FOR $A IN source(&{ks})/{ke} $B IN document(&{rs})/{re} \
                 WHERE $A/{key}/data() = $B/{rf}/data() \
                 RETURN <Pair{n}> $A $B </Pair{n}> {{$A, $B}}",
                ks = keyed.source,
                ke = keyed.elem,
                rs = refing.source,
                re = refing.elem,
                key = ds.key_field(),
                rf = ds.ref_field(),
            );
            GenQuery {
                text,
                shape: vec![(format!("Pair{n}"), keyed.elem)],
            }
        }
        // Semijoin shape: filter the keyed source by a referencing
        // predicate but return only the keyed rows (grouped).
        _ => {
            let extra = conjunct(rng, ds, "B", &refing);
            let text = format!(
                "FOR $A IN source(&{ks})/{ke} $B IN document(&{rs})/{re} \
                 WHERE $A/{key}/data() = $B/{rf}/data() AND {extra} \
                 RETURN <Hit{n}> $A </Hit{n}> {{$A}}",
                ks = keyed.source,
                ke = keyed.elem,
                rs = refing.source,
                re = refing.elem,
                key = ds.key_field(),
                rf = ds.ref_field(),
            );
            GenQuery {
                text,
                shape: vec![(format!("Hit{n}"), keyed.elem)],
            }
        }
    }
}

/// A generated in-place query (`document(root)/…`) against a result of
/// shape `shape` — what `q(query, p)` composes or decontextualizes.
pub fn gen_inplace_query(rng: &mut Rng, ds: &Dataset, shape: &[(String, &'static str)]) -> String {
    let (child, inner) = rng.pick(shape);
    let inner_shape = if *inner == ds.keyed().elem {
        ds.keyed()
    } else {
        ds.referencing()
    };
    let (field, kind) = *rng.pick(inner_shape.fields);
    let op = *rng.pick(COMPARES);
    let lit = ds.literal(rng, kind);
    let n = rng.below(1000);
    match rng.below(4) {
        // Filtered passthrough of the root's children.
        0 => format!(
            "FOR $X IN document(root)/{child} \
             WHERE $X/{inner}/{field}/data() {op} {lit} RETURN $X"
        ),
        // Step below the child label and rewrap (grouped).
        1 => format!(
            "FOR $X IN document(root)/{child}/{inner}{wh} \
             RETURN <Pick{n}> $X </Pick{n}> {{$X}}",
            wh = if rng.chance(60) {
                format!(" WHERE $X/{field}/data() {op} {lit}")
            } else {
                String::new()
            },
        ),
        // Wildcard descent.
        2 => format!(
            "FOR $X IN document(root)/{child} \
             WHERE $X/{inner}/{field} {op} {lit} RETURN $X"
        ),
        // Unfiltered rewrap of everything under the root.
        _ => format!("FOR $X IN document(root)/{child} RETURN <All{n}> $X </All{n}> {{$X}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_split_independent() {
        let mut a = Rng(7);
        let mut b = Rng(7);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut s1 = Rng(7).split(1);
        let mut s2 = Rng(7).split(2);
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn generated_queries_parse() {
        for seed in 0..40 {
            let mut rng = Rng(seed);
            let ds = Dataset::gen(&mut rng, 20);
            let q = gen_top_query(&mut rng, &ds);
            parse_query(&q.text).unwrap_or_else(|e| panic!("{e}\n{}", q.text));
            let ip = gen_inplace_query(&mut rng, &ds, &q.shape);
            parse_query(&ip).unwrap_or_else(|e| panic!("{e}\n{ip}"));
        }
    }

    #[test]
    fn datasets_build_and_run() {
        let mut rng = Rng(3);
        for _ in 0..4 {
            let ds = Dataset::gen(&mut rng, 12);
            let (catalog, _db) = ds.build();
            let m = Mediator::new(catalog);
            let mut s = m.session();
            let q = gen_top_query(&mut rng, &ds);
            // Generated queries must at least plan and execute.
            let p = s
                .query(&q.text)
                .unwrap_or_else(|e| panic!("{e}\n{}", q.text));
            let _ = s.child_count(p).unwrap();
        }
    }
}
