//! Session scripts: mixed navigate/query/decontextualize/export
//! command sequences, plus the machinery to run one script against any
//! [`Target`] (in-process session or wire client) and compare the
//! transcripts under a chosen normalization level.

use crate::gen::{gen_inplace_query, gen_top_query, Dataset, Rng};
use mix::prelude::*;

/// A register naming one of the node handles the script has produced
/// so far; resolved modulo the live-handle count at execution time, so
/// the same script is valid under every knob setting (equivalent runs
/// produce the same *number* of handles even when the numerals differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u32);

/// One scripted session command. Node-valued commands name their
/// argument via [`Reg`]; query text lives in the script's pools so a
/// minimizer can drop ops without dangling references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Issue top-level query `queries[i]`.
    Query(usize),
    /// `q(inplace[query], roots[node])` — composition from a result
    /// root (or decontextualization when navigation handed back an
    /// interior root). Resolves over *roots*, not all handles.
    QFrom { query: usize, node: Reg },
    /// First child.
    D(Reg),
    /// Right sibling.
    R(Reg),
    /// Element label.
    Fl(Reg),
    /// Leaf value.
    Fv(Reg),
    /// Force + collect children.
    Children(Reg),
    /// Force + count children.
    ChildCount(Reg),
    /// Render the subtree (the content carrier for equivalence).
    Render(Reg),
    /// EXPLAIN — executed for coverage; its text is never compared
    /// (plan annotations legitimately differ across knobs).
    Explain(Reg),
    /// Bulk columnar export of up to `max_rows` children.
    Export { node: Reg, max_rows: u32 },
    /// Counter snapshot — executed for coverage, never compared
    /// (prefetch makes shipping counters timing-dependent).
    Stats,
}

/// A generated session: query-text pools plus the op sequence.
#[derive(Debug, Clone)]
pub struct Script {
    /// Top-level query texts ([`Op::Query`] indexes these).
    pub queries: Vec<String>,
    /// In-place query texts ([`Op::QFrom`] indexes these).
    pub inplace: Vec<String>,
    /// The command sequence.
    pub ops: Vec<Op>,
}

impl Script {
    /// Human-readable dump (what a failing fuzz case prints).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for (i, q) in self.queries.iter().enumerate() {
            out.push_str(&format!("query[{i}]: {q}\n"));
        }
        for (i, q) in self.inplace.iter().enumerate() {
            out.push_str(&format!("inplace[{i}]: {q}\n"));
        }
        for (i, op) in self.ops.iter().enumerate() {
            out.push_str(&format!("op[{i}]: {op:?}\n"));
        }
        out
    }
}

/// Generate a mixed session script of about `len` ops over `ds`.
/// Always opens with `Query(0)`, so node registers have something to
/// resolve against from the second op on.
pub fn gen_script(rng: &mut Rng, ds: &Dataset, len: usize) -> Script {
    let n_q = 1 + rng.below(3) as usize;
    let mut queries = Vec::new();
    let mut shapes = Vec::new();
    for _ in 0..n_q {
        let q = gen_top_query(rng, ds);
        queries.push(q.text);
        shapes.push(q.shape);
    }
    let n_ip = 1 + rng.below(3) as usize;
    let mut inplace = Vec::new();
    for _ in 0..n_ip {
        let shape = rng.pick(&shapes).clone();
        inplace.push(gen_inplace_query(rng, ds, &shape));
    }
    let mut ops = vec![Op::Query(0)];
    for _ in 0..len {
        let reg = Reg(rng.next_u64() as u32);
        ops.push(match rng.below(100) {
            0..=7 => Op::Query(rng.below(queries.len() as u64) as usize),
            8..=16 => Op::QFrom {
                query: rng.below(inplace.len() as u64) as usize,
                node: reg,
            },
            17..=31 => Op::D(reg),
            32..=46 => Op::R(reg),
            47..=54 => Op::Fl(reg),
            55..=62 => Op::Fv(reg),
            63..=72 => Op::Children(reg),
            73..=79 => Op::ChildCount(reg),
            80..=87 => Op::Render(reg),
            88..=89 => Op::Explain(reg),
            90..=96 => Op::Export {
                node: reg,
                max_rows: rng.below(5) as u32,
            },
            _ => Op::Stats,
        });
    }
    Script {
        queries,
        inplace,
        ops,
    }
}

// ---- execution -------------------------------------------------------

/// Anything that can serve the QDOM [`Command`] surface: an in-process
/// [`QdomSession`] or a [`WireClient`] talking to `mix-serve`.
pub trait Target {
    /// Execute one command; transport failures should panic (the fuzz
    /// and soak configurations make transport errors impossible by
    /// construction — a chaos fault surfaces as [`Reply::Err`]).
    fn call(&mut self, cmd: Command) -> Reply;
}

impl Target for QdomSession<'_> {
    fn call(&mut self, cmd: Command) -> Reply {
        self.dispatch(cmd)
    }
}

impl Target for WireClient {
    fn call(&mut self, cmd: Command) -> Reply {
        match WireClient::call(self, cmd) {
            Ok(r) => r,
            Err(e) => panic!("wire transport error: {e}"),
        }
    }
}

/// How strictly two transcripts are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// Bit-for-bit, handles included (wire vs in-process on identical
    /// options).
    Exact,
    /// Handle numerals elided; everything else exact, rendered text
    /// including oids (lazy vs eager, row vs columnar: same engine,
    /// same oids, different handle spacing).
    NoHandles,
    /// Additionally strip per-line oid prefixes from rendered text
    /// (cached vs fresh plans re-mint skolem oids).
    Content,
}

fn content_only(rendered: &str) -> String {
    rendered
        .lines()
        .map(|l| {
            let trimmed = l.trim_start();
            let indent = &l[..l.len() - trimmed.len()];
            let rest = match trimmed.strip_prefix('&') {
                Some(r) => r.split_once(' ').map(|(_, rest)| rest).unwrap_or(""),
                None => trimmed,
            };
            format!("{indent}{rest}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn fmt_node(w: WireNode, norm: Norm) -> String {
    match norm {
        Norm::Exact => format!("({},{})", w.result, w.node),
        _ => "(#)".to_string(),
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Null => "·".to_string(),
        other => format!("{other}"),
    }
}

fn fmt_block(b: &ColumnBlock, norm: Norm) -> String {
    let mut out = format!("block[{}]", b.len());
    for r in 0..b.len() {
        out.push_str(" {");
        let start = if norm == Norm::Exact { 0 } else { 1 };
        for c in start..b.arity() {
            if c > start {
                out.push(' ');
            }
            out.push_str(&fmt_value(&b.value_at(r, c)));
        }
        out.push('}');
    }
    out
}

/// Render one reply under `norm`. `op` disambiguates the text-valued
/// commands (Render is compared, Explain is not).
fn fmt_reply(op: &Op, reply: &Reply, norm: Norm) -> String {
    match reply {
        Reply::Node(w) => format!("node{}", fmt_node(*w, norm)),
        Reply::Step(Some(w)) => format!("step{}", fmt_node(*w, norm)),
        Reply::Step(None) => "step(-)".to_string(),
        Reply::Label(Some(n)) => format!("label({n})"),
        Reply::Label(None) => "label(-)".to_string(),
        Reply::Value(Some(v)) => format!("value({})", fmt_value(v)),
        Reply::Value(None) => "value(-)".to_string(),
        Reply::Nodes(v) => match norm {
            Norm::Exact => format!(
                "nodes[{}]",
                v.iter()
                    .map(|w| fmt_node(*w, norm))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            _ => format!("nodes[{}]", v.len()),
        },
        Reply::Count(n) => format!("count({n})"),
        Reply::Text(t) => match op {
            Op::Explain(_) => "explain:ok".to_string(),
            _ if norm == Norm::Content => format!("text<{}>", content_only(t)),
            _ => format!("text<{t}>"),
        },
        Reply::Block(b) => fmt_block(b, norm),
        Reply::Stats(_) => "stats:ok".to_string(),
        Reply::Err(e) => format!("err({e})"),
    }
}

/// Run `script` against `target`, returning the raw reply per op
/// (`None` where the op had no resolvable register yet). Handle
/// bookkeeping (`handles`, `roots`) is driven by the replies, so
/// equivalent runs stay register-aligned even though their handle
/// numerals differ.
pub fn run_script_raw(target: &mut dyn Target, script: &Script) -> Vec<Option<Reply>> {
    let mut handles: Vec<WireNode> = Vec::new();
    let mut roots: Vec<WireNode> = Vec::new();
    let mut out = Vec::with_capacity(script.ops.len());
    for op in &script.ops {
        let pick = |regs: &[WireNode], r: Reg| -> Option<WireNode> {
            if regs.is_empty() {
                None
            } else {
                Some(regs[r.0 as usize % regs.len()])
            }
        };
        let cmd = match *op {
            Op::Query(i) => Some(Command::Query {
                text: script.queries[i].clone(),
            }),
            Op::QFrom { query, node } => pick(&roots, node).map(|from| Command::Q {
                text: script.inplace[query].clone(),
                from,
            }),
            Op::D(r) => pick(&handles, r).map(|p| Command::D { p }),
            Op::R(r) => pick(&handles, r).map(|p| Command::R { p }),
            Op::Fl(r) => pick(&handles, r).map(|p| Command::Fl { p }),
            Op::Fv(r) => pick(&handles, r).map(|p| Command::Fv { p }),
            Op::Children(r) => pick(&handles, r).map(|p| Command::Children { p }),
            Op::ChildCount(r) => pick(&handles, r).map(|p| Command::ChildCount { p }),
            Op::Render(r) => pick(&handles, r).map(|p| Command::Render { p }),
            Op::Explain(r) => pick(&handles, r).map(|p| Command::Explain { p }),
            Op::Export { node, max_rows } => {
                pick(&handles, node).map(|p| Command::Export { p, max_rows })
            }
            Op::Stats => Some(Command::Stats),
        };
        let Some(cmd) = cmd else {
            out.push(None);
            continue;
        };
        let reply = target.call(cmd);
        match &reply {
            Reply::Node(w) => {
                handles.push(*w);
                roots.push(*w);
            }
            Reply::Step(Some(w)) => handles.push(*w),
            Reply::Nodes(v) => handles.extend(v.iter().copied()),
            _ => {}
        }
        out.push(Some(reply));
    }
    out
}

/// Render a raw run into one transcript line per op under `norm`.
pub fn render_transcript(script: &Script, raw: &[Option<Reply>], norm: Norm) -> Vec<String> {
    script
        .ops
        .iter()
        .zip(raw)
        .map(|(op, r)| match r {
            None => "skip".to_string(),
            Some(reply) => fmt_reply(op, reply, norm),
        })
        .collect()
}

/// [`run_script_raw`] + [`render_transcript`] in one call.
pub fn run_script(target: &mut dyn Target, script: &Script, norm: Norm) -> Vec<String> {
    let raw = run_script_raw(target, script);
    render_transcript(script, &raw, norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Dataset;
    use std::sync::Arc;

    #[test]
    fn scripts_are_deterministic() {
        let mk = || {
            let mut rng = Rng(42);
            let ds = Dataset::gen(&mut rng, 10);
            (ds, gen_script(&mut rng, &ds, 30))
        };
        let (_, a) = mk();
        let (_, b) = mk();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn run_script_produces_aligned_transcripts() {
        let mut rng = Rng(9);
        let ds = Dataset::gen(&mut rng, 10);
        let script = gen_script(&mut rng, &ds, 25);
        let (catalog, _db) = ds.build();
        let m = Arc::new(Mediator::new(catalog));
        let mut s1 = m.session_arc();
        let mut s2 = m.session_arc();
        let t1 = run_script(&mut s1, &script, Norm::Exact);
        let t2 = run_script(&mut s2, &script, Norm::Exact);
        assert_eq!(t1.len(), script.ops.len());
        assert_eq!(t1, t2);
    }
}
