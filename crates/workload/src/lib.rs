//! # mix-workload
//!
//! The workload harness for the MIX reproduction: everything the
//! paper's evaluation section would have needed, turned into a
//! correctness amplifier.
//!
//! Three layers:
//!
//! * [`gen`] — seeded generation of scaled schema/data families
//!   (customers/orders and the auction scenario, via
//!   `mix_repro::datagen`), query templates spanning the full Fig. 4
//!   grammar, and mixed navigate/query/decontextualize/export session
//!   scripts. Deterministic: a seed *is* a workload.
//! * [`fuzz`] — the knob-matrix equivalence fuzzer: each generated
//!   session runs under the default options and under every variant
//!   (eager, row-store, block policies, nested-loop joins, naive
//!   plans, prefetch, chaos faults, cached plans, over the wire) and
//!   the transcripts must agree at the variant's normalization level.
//!   Failures are minimized automatically before they are reported.
//! * [`soak`] — the served-mode soak runner: N concurrent wire
//!   sessions looping scripts against `mix-serve` under chaos faults,
//!   recording throughput, per-class tail latencies, and counter
//!   invariants (shipped-data conservation, clean quiesce) for
//!   `BENCH_soak.json`.
//!
//! Binaries: `workload_fuzz` (CI smoke: fixed seed, bounded cases) and
//! `workload_soak` (`--smoke` for the seconds-scale CI run, full run
//! writes `BENCH_soak.json`).

pub mod fuzz;
pub mod gen;
pub mod script;
pub mod soak;

pub use fuzz::{run_fuzz, Divergence, FuzzConfig, FuzzReport, Variant, ALL_VARIANTS};
pub use gen::{Dataset, Family, Rng};
pub use script::{gen_script, run_script, run_script_raw, Norm, Op, Reg, Script, Target};
pub use soak::{run_soak, SoakConfig, SoakOutcome};
