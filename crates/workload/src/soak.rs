//! The soak runner: N concurrent wire sessions looping generated
//! scripts against a live `mix-serve` server whose backends inject
//! chaos faults, measuring throughput and per-command-class tail
//! latency and checking counter invariants at quiesce.
//!
//! Sessions are grouped into *script classes*: every session of a
//! class runs the identical script over the identical data, while its
//! backend runs a *distinct* chaos fault schedule. Because the retry
//! budget covers the fault bursts and faults land before rows ship,
//! every run of a class must report the identical
//! `(BlocksShipped, TuplesShipped, NodesBuilt)` triple — the
//! conservation invariant: faults may cost retries, never data.

use crate::gen::{Dataset, Rng};
use crate::script::{gen_script, run_script_raw, Script, Target};
use mix::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Soak shape: concurrency, duration, data scale, chaos rate.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed (datasets, scripts, chaos schedules derive from it).
    pub master_seed: u64,
    /// Concurrent client threads.
    pub sessions: usize,
    /// Distinct script classes (sessions cycle through them).
    pub classes: usize,
    /// How long client threads keep opening sessions.
    pub duration: Duration,
    /// Keyed-source scale of the shared dataset.
    pub scale: usize,
    /// Ops per script.
    pub script_len: usize,
    /// Transient-fault rate in per-mille admitted statements (100 =
    /// 10% chaos), burst 1 — inside the default 4-retry budget.
    pub fault_per_mille: u32,
    /// Server worker-pool size (0 = hardware).
    pub workers: usize,
    /// Hash-shard the backend across this many shards (0 = a single
    /// unsharded backend). Chaos faults then land independently on
    /// every shard, and results flow through the scatter-gather merge.
    pub shards: usize,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            master_seed: 0x534f414b,
            sessions: 16,
            classes: 4,
            duration: Duration::from_secs(10),
            scale: 60,
            script_len: 40,
            fault_per_mille: 100,
            workers: 0,
            shards: 0,
        }
    }
}

/// Latency population for one command class.
#[derive(Debug, Clone)]
pub struct ClassLats {
    pub class: &'static str,
    pub count: usize,
    pub p50_ns: u128,
    pub p95_ns: u128,
    pub p99_ns: u128,
}

/// The soak's result: throughput, tails, and invariant verdicts.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    pub sessions: usize,
    pub classes: usize,
    /// Completed script iterations (sessions opened and closed).
    pub iterations: u64,
    /// Wire commands sent (including the per-iteration stats probe).
    pub commands: u64,
    pub wall: Duration,
    pub throughput_cmds_per_s: f64,
    pub per_class: Vec<ClassLats>,
    /// Total faults the chaos backends injected (summed over
    /// sessions' counter snapshots).
    pub faults_injected: u64,
    /// Total backend retries spent absorbing them.
    pub retries_attempted: u64,
    /// Per script class, the (BlocksShipped, TuplesShipped,
    /// NodesBuilt) triple every run of the class reported.
    pub class_triples: Vec<(usize, (u64, u64, u64))>,
    /// Human-readable invariant failures; empty on a healthy soak.
    pub invariant_failures: Vec<String>,
}

const LAT_CLASSES: &[&str] = &["query", "inplace_q", "nav", "render", "export", "stats"];

fn class_of(cmd: &Command) -> usize {
    match cmd {
        Command::Query { .. } => 0,
        Command::Q { .. } => 1,
        Command::D { .. }
        | Command::R { .. }
        | Command::Fl { .. }
        | Command::Fv { .. }
        | Command::Children { .. }
        | Command::ChildCount { .. } => 2,
        Command::Render { .. } | Command::Explain { .. } => 3,
        Command::Export { .. } => 4,
        Command::Stats => 5,
    }
}

/// A wire client that times every command and files the latency under
/// its class.
struct TimedWire {
    client: WireClient,
    lats: Vec<Vec<u128>>,
    sent: u64,
}

impl Target for TimedWire {
    fn call(&mut self, cmd: Command) -> Reply {
        let class = class_of(&cmd);
        let t = Instant::now();
        let reply = match self.client.call(cmd) {
            Ok(r) => r,
            Err(e) => panic!("wire transport error mid-soak: {e}"),
        };
        self.lats[class].push(t.elapsed().as_nanos());
        self.sent += 1;
        reply
    }
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn counter(stats: &[(String, u64)], label: &str) -> u64 {
    stats
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// One client thread: loop `connect → run script of my class → stats
/// probe → close` until the deadline.
struct ThreadReport {
    lats: Vec<Vec<u128>>,
    sent: u64,
    iterations: u64,
    /// Per iteration: (class, BlocksShipped, TuplesShipped,
    /// NodesBuilt, FaultsInjected, RetriesAttempted, BackendErrors).
    probes: Vec<(usize, [u64; 6])>,
}

fn client_thread(
    addr: std::net::SocketAddr,
    scripts: Arc<Vec<Script>>,
    thread_idx: usize,
    deadline: Instant,
) -> ThreadReport {
    let mut report = ThreadReport {
        lats: vec![Vec::new(); LAT_CLASSES.len()],
        sent: 0,
        iterations: 0,
        probes: Vec::new(),
    };
    let mut iter = 0u64;
    while Instant::now() < deadline {
        // Spread classes across threads and iterations.
        let class = (thread_idx as u64 + iter) as usize % scripts.len();
        let client = WireClient::connect(addr).expect("soak connect");
        let mut timed = TimedWire {
            client,
            lats: std::mem::take(&mut report.lats),
            sent: 0,
        };
        run_script_raw(&mut timed, &scripts[class]);
        let stats_reply = timed.call(Command::Stats);
        let Reply::Stats(stats) = stats_reply else {
            panic!("stats probe answered {stats_reply:?}");
        };
        report.probes.push((
            class,
            [
                counter(&stats, "blocks_shipped"),
                counter(&stats, "tuples_shipped"),
                counter(&stats, "nodes_built"),
                counter(&stats, "faults_injected"),
                counter(&stats, "retries_attempted"),
                counter(&stats, "backend_errors"),
            ],
        ));
        report.lats = std::mem::take(&mut timed.lats);
        report.sent += timed.sent;
        timed.client.close().expect("soak close");
        report.iterations += 1;
        iter += 1;
    }
    report
}

/// Run the soak: start a chaos-backed server, drive it with
/// `cfg.sessions` looping client threads for `cfg.duration`, then
/// quiesce and check every invariant.
pub fn run_soak(cfg: &SoakConfig) -> SoakOutcome {
    let master = Rng(cfg.master_seed);
    let mut rng = master.split(0);
    let ds = Dataset::gen(&mut rng, cfg.scale);
    let scripts: Arc<Vec<Script>> = Arc::new(
        (0..cfg.classes.max(1))
            .map(|c| {
                let mut r = master.split(1000 + c as u64);
                gen_script(&mut r, &ds, cfg.script_len)
            })
            .collect(),
    );

    // Every session gets a fresh mediator over the same dataset but a
    // distinct chaos seed: same data, different fault schedule.
    let shared_cache = Arc::new(SharedPlanCache::new(8, 64));
    let fault_per_mille = cfg.fault_per_mille;
    let session_no = Arc::new(AtomicU64::new(0));
    let factory: Arc<dyn Fn() -> Mediator + Send + Sync> = {
        let shared_cache = Arc::clone(&shared_cache);
        let session_no = Arc::clone(&session_no);
        let seed = cfg.master_seed;
        let shards = cfg.shards;
        Arc::new(move || {
            // Sharded mode serves the identical data as a hash
            // federation; Backend::set_fault_policy fans the chaos
            // policy out to every shard. Each session builds its own
            // database on purpose: fault policies ride the database's
            // shared handle, so per-session fault schedules need
            // per-session instances — which also means the shared plan
            // cache (keyed by backend identity) never crosses sessions
            // here and is exercised only for capacity bounding.
            let catalog = if shards > 0 {
                ds.build_sharded(mix_repro::datagen::ShardLayout::Hash(shards))
                    .0
            } else {
                ds.build().0
            };
            if fault_per_mille > 0 {
                let n = session_no.fetch_add(1, Ordering::Relaxed);
                let policy =
                    FaultPolicy::transient(seed ^ n.wrapping_mul(0x9e37), fault_per_mille as u16)
                        .with_burst(1);
                for db in catalog.databases() {
                    db.set_fault_policy(Some(policy));
                }
            }
            Mediator::with_options(
                catalog,
                MediatorOptions::builder()
                    .prefetch(PrefetchPolicy::Depth(2))
                    .shared_plan_cache(Arc::clone(&shared_cache))
                    .build(),
            )
        })
    };

    let mut server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: cfg.sessions * 2,
            workers: cfg.workers,
            ..ServerConfig::default()
        },
        factory,
    )
    .expect("start soak server");
    let addr = server.addr();

    let t0 = Instant::now();
    let deadline = t0 + cfg.duration;
    let handles: Vec<_> = (0..cfg.sessions)
        .map(|i| {
            let scripts = Arc::clone(&scripts);
            std::thread::spawn(move || client_thread(addr, scripts, i, deadline))
        })
        .collect();
    let mut lats: Vec<Vec<u128>> = vec![Vec::new(); LAT_CLASSES.len()];
    let mut sent = 0u64;
    let mut iterations = 0u64;
    let mut probes: Vec<(usize, [u64; 6])> = Vec::new();
    for h in handles {
        let r = h.join().expect("soak client thread");
        for (acc, l) in lats.iter_mut().zip(r.lats) {
            acc.extend(l);
        }
        sent += r.sent;
        iterations += r.iterations;
        probes.extend(r.probes);
    }
    let wall = t0.elapsed();

    // ---- quiesce + invariants ---------------------------------------
    let mut failures = Vec::new();
    // Clients saw their Bye acks, but the worker's SessionsClosed tick
    // can trail by a scheduling quantum; give it a moment.
    let settle = Instant::now();
    while server.live_sessions() != 0 && settle.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }
    let live = server.live_sessions();
    if live != 0 {
        failures.push(format!("live_sessions == {live} at quiesce, want 0"));
    }
    let opened = server.stats().get(Counter::SessionsOpened);
    let closed = server.stats().get(Counter::SessionsClosed);
    let rejected = server.stats().get(Counter::SessionsRejected);
    let wire_cmds = server.stats().get(Counter::WireCommands);
    if opened != iterations {
        failures.push(format!(
            "SessionsOpened == {opened}, want {iterations} (one per completed iteration)"
        ));
    }
    if opened != closed {
        failures.push(format!(
            "SessionsOpened {opened} != SessionsClosed {closed}"
        ));
    }
    if rejected != 0 {
        failures.push(format!("SessionsRejected == {rejected}, want 0"));
    }
    if wire_cmds != sent {
        failures.push(format!(
            "WireCommands == {wire_cmds}, server-side, but clients sent {sent}"
        ));
    }
    server.shutdown();
    if active_prefetchers() != 0 {
        failures.push(format!(
            "active_prefetchers == {} after shutdown, want 0",
            active_prefetchers()
        ));
    }

    // Conservation: within a class, every run reports one triple.
    let mut by_class: BTreeMap<usize, Vec<(u64, u64, u64)>> = BTreeMap::new();
    let mut faults = 0u64;
    let mut retries = 0u64;
    for (class, probe) in &probes {
        by_class
            .entry(*class)
            .or_default()
            .push((probe[0], probe[1], probe[2]));
        faults += probe[3];
        retries += probe[4];
        if probe[5] != 0 {
            failures.push(format!(
                "BackendErrors == {} in a class-{class} session (retry budget must absorb \
                 burst-1 faults)",
                probe[5]
            ));
        }
    }
    let mut class_triples = Vec::new();
    for (class, triples) in &by_class {
        let first = triples[0];
        if let Some(bad) = triples.iter().find(|t| **t != first) {
            failures.push(format!(
                "class {class} shipped-data triples diverge: {first:?} vs {bad:?} \
                 (BlocksShipped, TuplesShipped, NodesBuilt must be fault-schedule-independent)"
            ));
        }
        class_triples.push((*class, first));
    }
    if cfg.fault_per_mille > 0 && faults == 0 && iterations > 0 {
        failures.push("chaos enabled but FaultsInjected == 0 across all sessions".to_string());
    }

    let per_class = LAT_CLASSES
        .iter()
        .zip(lats.iter_mut())
        .map(|(name, l)| {
            l.sort_unstable();
            ClassLats {
                class: name,
                count: l.len(),
                p50_ns: percentile(l, 0.50),
                p95_ns: percentile(l, 0.95),
                p99_ns: percentile(l, 0.99),
            }
        })
        .collect();

    SoakOutcome {
        sessions: cfg.sessions,
        classes: cfg.classes,
        iterations,
        commands: sent,
        wall,
        throughput_cmds_per_s: sent as f64 / wall.as_secs_f64().max(1e-9),
        per_class,
        faults_injected: faults,
        retries_attempted: retries,
        class_triples,
        invariant_failures: failures,
    }
}

impl SoakOutcome {
    /// Render the outcome as the `BENCH_soak.json` document.
    pub fn to_json(&self, cfg: &SoakConfig) -> String {
        let classes = self
            .per_class
            .iter()
            .map(|c| {
                format!(
                    "    {{ \"case\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
                     \"p99_ns\": {} }}",
                    c.class, c.count, c.p50_ns, c.p95_ns, c.p99_ns
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let triples = self
            .class_triples
            .iter()
            .map(|(c, (b, t, n))| {
                format!(
                    "    {{ \"class\": {c}, \"blocks_shipped\": {b}, \"tuples_shipped\": {t}, \
                     \"nodes_built\": {n} }}"
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let backend = if cfg.shards > 0 {
            format!("a {}-shard hash federation", cfg.shards)
        } else {
            "a single unsharded backend".to_string()
        };
        format!(
            "{{\n  \"description\": \"Soak run: {sessions} concurrent wire sessions looping \
             {classes_n} seeded session-script classes against one mix-serve worker-pool server \
             for {secs:.0}s over {backend}, every backend statement subject to {pm}-per-mille \
             transient chaos faults (burst 1) under the default 4-retry budget, prefetch depth 2, \
             shared plan cache. Latencies are client-observed round trips by command class. Invariants \
             checked at quiesce: sessions opened == closed == completed iterations, zero \
             rejections, server WireCommands == client-sent commands, live_sessions == 0, \
             active_prefetchers == 0, zero BackendErrors, and shipped-data conservation — every \
             run of a script class reports the identical (BlocksShipped, TuplesShipped, \
             NodesBuilt) triple regardless of its session's fault schedule. Regenerate with \
             `cargo run --release -p mix-workload --bin workload_soak`.\",\n  \
             \"sessions\": {sessions},\n  \"shards\": {shards},\n  \
             \"script_classes\": {classes_n},\n  \
             \"iterations\": {iters},\n  \"commands_total\": {cmds},\n  \
             \"wall_ms\": {wall},\n  \"throughput_cmds_per_s\": {tput:.0},\n  \
             \"faults_injected\": {faults},\n  \"retries_attempted\": {retries},\n  \
             \"invariant_failures\": [{fails}],\n  \"latency\": [\n{classes}\n  ],\n  \
             \"class_conservation\": [\n{triples}\n  ]\n}}\n",
            sessions = self.sessions,
            shards = cfg.shards,
            classes_n = self.classes,
            secs = cfg.duration.as_secs_f64(),
            pm = cfg.fault_per_mille,
            iters = self.iterations,
            cmds = self.commands,
            wall = self.wall.as_millis(),
            tput = self.throughput_cmds_per_s,
            faults = self.faults_injected,
            retries = self.retries_attempted,
            fails = self
                .invariant_failures
                .iter()
                .map(|f| format!("\"{}\"", f.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-second miniature soak — the inline guard that the runner,
    /// chaos wiring and every invariant hold together. The CI smoke in
    /// `scripts/check.sh` runs ~10s via the `workload_soak` binary.
    #[test]
    fn mini_soak_invariants_hold() {
        let cfg = SoakConfig {
            sessions: 4,
            classes: 2,
            duration: Duration::from_secs(2),
            scale: 16,
            script_len: 12,
            workers: 2,
            ..SoakConfig::default()
        };
        let out = run_soak(&cfg);
        assert!(out.iterations > 0, "no iterations completed");
        assert!(
            out.invariant_failures.is_empty(),
            "{:?}",
            out.invariant_failures
        );
    }

    /// The same miniature soak over a 4-shard hash federation: chaos
    /// faults land independently per shard, results flow through the
    /// scatter-gather merge, and every invariant — including
    /// shipped-data conservation across fault schedules — still holds.
    #[test]
    fn mini_soak_sharded_invariants_hold() {
        let cfg = SoakConfig {
            sessions: 4,
            classes: 2,
            duration: Duration::from_secs(2),
            scale: 16,
            script_len: 12,
            workers: 2,
            shards: 4,
            ..SoakConfig::default()
        };
        let out = run_soak(&cfg);
        assert!(out.iterations > 0, "no iterations completed");
        assert!(
            out.invariant_failures.is_empty(),
            "{:?}",
            out.invariant_failures
        );
    }
}
