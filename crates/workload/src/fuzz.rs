//! The knob-matrix equivalence fuzzer: run each generated session
//! script under the baseline options and under every variant of the
//! knob matrix, and assert the transcripts agree at the variant's
//! normalization level. On divergence, greedily minimize the script
//! before reporting.

use crate::gen::{Dataset, Rng};
use crate::script::{gen_script, render_transcript, run_script, run_script_raw, Norm, Script};
use mix::prelude::*;
use std::sync::Arc;

/// The chaos schedule fuzz variants run under: 10% transient faults in
/// bursts of 1, safely inside the default 4-retry budget, so results
/// must stay bit-identical to the fault-free run.
pub fn chaos_policy(seed: u64) -> FaultPolicy {
    FaultPolicy::transient(seed, 100).with_burst(1)
}

/// One cell of the knob matrix, always compared against the default
/// (lazy, optimizing, columnar, auto-block) baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Eager materialization (handles re-spaced, content identical).
    Eager,
    /// Boxed-row shipping (columnar off).
    RowStore,
    /// One-tuple-per-pull (the paper's pull model).
    BlockOff,
    /// Fixed 3-tuple blocks (off the ramp path).
    BlockFixed,
    /// Nested-loop joins only.
    NoHashJoins,
    /// Buffering (drain-then-partition) groupby operator.
    GByStateful,
    /// Lazy hash groupby forced even where Auto would pick presorted.
    GByHash,
    /// Eager materialization over boxed rows — the knob pair most
    /// likely to disagree, since each side exercises a different
    /// shipping and evaluation path at once.
    EagerRows,
    /// One-tuple blocks under nested-loop joins: every operator
    /// boundary crossed one tuple at a time.
    TinyBlocksNlj,
    /// Naive plans, no rewriting/pushdown.
    NoOptimize,
    /// Pipelined prefetch, depth 2.
    Prefetch,
    /// 10% transient backend faults under the default retry budget.
    Chaos,
    /// Second session over a shared plan cache (cached plans) vs the
    /// first (fresh plans). Skolem oids may differ; content may not.
    CachedPlan,
    /// The same options served over the wire vs in process.
    Wire,
    /// The same data as a 2-shard range-partitioned federation: routed
    /// and scattered SQL must reproduce the single-backend transcripts
    /// bit-for-bit.
    Sharded2,
    /// A 4-shard hash-partitioned federation.
    Sharded4,
    /// The 4-shard federation with transient faults on every shard,
    /// inside the retry budget.
    Sharded4Chaos,
}

/// Every variant, in fuzz order.
pub const ALL_VARIANTS: &[Variant] = &[
    Variant::Eager,
    Variant::RowStore,
    Variant::BlockOff,
    Variant::BlockFixed,
    Variant::NoHashJoins,
    Variant::GByStateful,
    Variant::GByHash,
    Variant::EagerRows,
    Variant::TinyBlocksNlj,
    Variant::NoOptimize,
    Variant::Prefetch,
    Variant::Chaos,
    Variant::CachedPlan,
    Variant::Wire,
    Variant::Sharded2,
    Variant::Sharded4,
    Variant::Sharded4Chaos,
];

impl Variant {
    /// Short name (used in reports and regression-test names).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Eager => "eager",
            Variant::RowStore => "rowstore",
            Variant::BlockOff => "block-off",
            Variant::BlockFixed => "block-fixed",
            Variant::NoHashJoins => "no-hash-joins",
            Variant::GByStateful => "gby-stateful",
            Variant::GByHash => "gby-hash",
            Variant::EagerRows => "eager-rows",
            Variant::TinyBlocksNlj => "tiny-blocks-nlj",
            Variant::NoOptimize => "no-optimize",
            Variant::Prefetch => "prefetch",
            Variant::Chaos => "chaos",
            Variant::CachedPlan => "cached-plan",
            Variant::Wire => "wire",
            Variant::Sharded2 => "sharded-2",
            Variant::Sharded4 => "sharded-4",
            Variant::Sharded4Chaos => "sharded-4-chaos",
        }
    }

    /// The sharded layout a federation variant runs on (`None` for the
    /// single-backend variants).
    pub fn shard_layout(self) -> Option<mix_repro::datagen::ShardLayout> {
        match self {
            Variant::Sharded2 => Some(mix_repro::datagen::ShardLayout::Range(2)),
            Variant::Sharded4 | Variant::Sharded4Chaos => {
                Some(mix_repro::datagen::ShardLayout::Hash(4))
            }
            _ => None,
        }
    }

    /// How strictly this variant's transcript must match the baseline.
    /// `Wire` runs identical options on both sides, so handles must
    /// match bit-for-bit. Engine-knob variants keep rendered content
    /// (oids included) but allow handle numerals to differ (lazy and
    /// eager sessions mint handles at different times). `CachedPlan`
    /// additionally re-mints skolem oids.
    pub fn norm(self) -> Norm {
        match self {
            // A sharded federation runs the *same* lazy engine over the
            // same reconstructed rows, so even handle numerals must
            // match the single-backend baseline.
            Variant::Wire | Variant::Sharded2 | Variant::Sharded4 | Variant::Sharded4Chaos => {
                Norm::Exact
            }
            Variant::CachedPlan => Norm::Content,
            _ => Norm::NoHandles,
        }
    }

    /// The variant's mediator options, derived from the baseline.
    pub fn options(self) -> MediatorOptions {
        let b = MediatorOptions::builder();
        match self {
            Variant::Eager => b.access(AccessMode::Eager),
            Variant::RowStore => b.columnar(false),
            Variant::BlockOff => b.block(BlockPolicy::Off),
            Variant::BlockFixed => b.block(BlockPolicy::Fixed(3)),
            Variant::NoHashJoins => b.hash_joins(false),
            Variant::GByStateful => b.gby(GByMode::Stateful),
            Variant::GByHash => b.gby(GByMode::Hash),
            Variant::EagerRows => b.access(AccessMode::Eager).columnar(false),
            Variant::TinyBlocksNlj => b.block(BlockPolicy::Fixed(1)).hash_joins(false),
            Variant::NoOptimize => b.optimize(false),
            Variant::Prefetch => b.prefetch(PrefetchPolicy::Depth(2)),
            // Chaos / CachedPlan / Wire / Sharded* run baseline
            // options; the difference lives outside `MediatorOptions`.
            Variant::Chaos
            | Variant::CachedPlan
            | Variant::Wire
            | Variant::Sharded2
            | Variant::Sharded4
            | Variant::Sharded4Chaos => b,
        }
        .build()
    }
}

/// A confirmed baseline-vs-variant divergence, minimized.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The per-case seed (`master.split(case_index)` stream value).
    pub case_seed: u64,
    pub variant: Variant,
    pub dataset: Dataset,
    /// The minimized script.
    pub script: Script,
    /// Index of the first differing transcript line.
    pub first_diff: usize,
    /// Baseline transcript line at `first_diff`.
    pub baseline: String,
    /// Variant transcript line at `first_diff`.
    pub got: String,
}

impl Divergence {
    /// The report a failing fuzz run prints: everything needed to
    /// reproduce without the fuzzer.
    pub fn pretty(&self) -> String {
        format!(
            "equivalence divergence: baseline vs {}\n\
             case seed: {:#x}\n\
             dataset: {:?}\n\
             {}first diff at op[{}]:\n  baseline: {}\n  variant:  {}\n",
            self.variant.name(),
            self.case_seed,
            self.dataset,
            self.script.pretty(),
            self.first_diff,
            self.baseline,
            self.got,
        )
    }
}

/// Run `script` under `variant` and compare with the baseline raw run
/// (rendered at the variant's norm). Returns the first differing line.
fn diverges(
    ds: &Dataset,
    script: &Script,
    baseline_raw: &[Option<Reply>],
    variant: Variant,
) -> Option<(usize, String, String)> {
    let norm = variant.norm();
    let base = render_transcript(script, baseline_raw, norm);
    let got = match variant {
        Variant::Chaos => {
            let (catalog, _db) = ds.build();
            for db in catalog.databases() {
                db.set_fault_policy(Some(chaos_policy(ds.seed)));
            }
            let m = Arc::new(Mediator::with_options(catalog, variant.options()));
            let mut s = m.session_arc();
            run_script(&mut s, script, norm)
        }
        Variant::CachedPlan => {
            let (catalog, _db) = ds.build();
            let opts = MediatorOptions::builder()
                .shared_plan_cache(Arc::new(SharedPlanCache::new(4, 64)))
                .build();
            let m = Arc::new(Mediator::with_options(catalog, opts));
            // Session 1 compiles fresh plans and fills the cache;
            // session 2 replays them from the cache. Their *contents*
            // must agree — and the comparison is 2-vs-1, not
            // 2-vs-baseline, because this variant isolates exactly the
            // cached-plan effect.
            let mut s1 = m.session_arc();
            let fresh = run_script(&mut s1, script, norm);
            let mut s2 = m.session_arc();
            let cached = run_script(&mut s2, script, norm);
            return first_diff(&fresh, &cached);
        }
        Variant::Wire => {
            let ds = *ds;
            let factory = move || {
                let (catalog, _db) = ds.build();
                Mediator::with_options(catalog, Variant::Wire.options())
            };
            let mut server =
                Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(factory))
                    .expect("start fuzz server");
            let mut client = WireClient::connect(server.addr()).expect("connect fuzz client");
            let got = run_script(&mut client, script, norm);
            client.close().ok();
            server.shutdown();
            got
        }
        Variant::Sharded2 | Variant::Sharded4 | Variant::Sharded4Chaos => {
            let layout = variant.shard_layout().expect("federation variant");
            let (catalog, sharded) = ds.build_sharded(layout);
            if variant == Variant::Sharded4Chaos {
                // Faults on every shard, inside the retry budget:
                // per-shard retries must stay invisible in transcripts.
                sharded.set_fault_policy(Some(chaos_policy(ds.seed)));
            }
            let m = Arc::new(Mediator::with_options(catalog, variant.options()));
            let mut s = m.session_arc();
            run_script(&mut s, script, norm)
        }
        _ => {
            let (catalog, _db) = ds.build();
            let m = Arc::new(Mediator::with_options(catalog, variant.options()));
            let mut s = m.session_arc();
            run_script(&mut s, script, norm)
        }
    };
    first_diff(&base, &got)
}

fn first_diff(a: &[String], b: &[String]) -> Option<(usize, String, String)> {
    if a == b {
        return None;
    }
    let i = a
        .iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    Some((
        i,
        a.get(i).cloned().unwrap_or_else(|| "<missing>".into()),
        b.get(i).cloned().unwrap_or_else(|| "<missing>".into()),
    ))
}

/// Greedy test-case minimization: repeatedly drop ops (suffix first,
/// then one at a time) while the divergence persists. The first op is
/// pinned (scripts must open with a query).
fn minimize(ds: &Dataset, script: &Script, variant: Variant) -> Script {
    let still_fails = |s: &Script| -> bool {
        if s.ops.is_empty() {
            return false;
        }
        let raw = baseline_raw(ds, s);
        diverges(ds, s, &raw, variant).is_some()
    };
    let mut best = script.clone();
    // Phase 1: binary-search the shortest failing prefix.
    let mut lo = 1; // keep the opening query
    let mut hi = best.ops.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let mut cand = best.clone();
        cand.ops.truncate(mid);
        if still_fails(&cand) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    best.ops.truncate(hi);
    // Phase 2: drop interior ops one at a time until a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = best.ops.len().saturating_sub(1);
        loop {
            if best.ops.len() > 1 {
                let mut cand = best.clone();
                cand.ops.remove(i);
                if still_fails(&cand) {
                    best = cand;
                    changed = true;
                }
            }
            if i == 0 {
                break;
            }
            i -= 1;
        }
    }
    best
}

/// Run the baseline (default options) and keep the raw replies, so
/// each variant can be compared at its own normalization level.
fn baseline_raw(ds: &Dataset, script: &Script) -> Vec<Option<Reply>> {
    let (catalog, _db) = ds.build();
    let m = Arc::new(Mediator::new(catalog));
    let mut s = m.session_arc();
    run_script_raw(&mut s, script)
}

/// Fuzz configuration: how many cases, at what data scale, how long
/// the scripts are, and which variants to exercise.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; case `i` runs on the `split(i)` stream.
    pub master_seed: u64,
    /// Number of generated cases.
    pub cases: usize,
    /// Keyed-source scale handed to [`Dataset::gen`].
    pub scale: usize,
    /// Ops per script.
    pub script_len: usize,
    /// Include the (slower) wire variant every `wire_every`-th case
    /// (0 = never).
    pub wire_every: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            master_seed: 0x4d49585f9,
            cases: 200,
            scale: 14,
            script_len: 30,
            wire_every: 16,
        }
    }
}

/// A fuzz run's summary.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Variant comparisons executed.
    pub comparisons: usize,
    /// Divergences found (minimized). Empty on a clean run.
    pub failures: Vec<Divergence>,
}

/// Run the fuzzer. Deterministic in `cfg`: the same config finds the
/// same divergences (or none) on every machine. Stops after
/// `max_failures` minimized divergences (0 = collect all).
pub fn run_fuzz(cfg: &FuzzConfig, max_failures: usize) -> FuzzReport {
    let master = Rng(cfg.master_seed);
    let mut report = FuzzReport {
        cases: 0,
        comparisons: 0,
        failures: Vec::new(),
    };
    for case in 0..cfg.cases {
        let mut rng = master.split(case as u64);
        let case_seed = rng.0;
        let ds = Dataset::gen(&mut rng, cfg.scale);
        let script = gen_script(&mut rng, &ds, cfg.script_len);
        let raw = baseline_raw(&ds, &script);
        report.cases += 1;
        for &variant in ALL_VARIANTS {
            if variant == Variant::Wire && (cfg.wire_every == 0 || case % cfg.wire_every != 0) {
                continue;
            }
            report.comparisons += 1;
            if diverges(&ds, &script, &raw, variant).is_some() {
                let min = minimize(&ds, &script, variant);
                let min_raw = baseline_raw(&ds, &min);
                let (first, base_line, got_line) = diverges(&ds, &min, &min_raw, variant)
                    .unwrap_or((0, "<vanished>".into(), "<vanished>".into()));
                report.failures.push(Divergence {
                    case_seed,
                    variant,
                    dataset: ds,
                    script: min,
                    first_diff: first,
                    baseline: base_line,
                    got: got_line,
                });
                if max_failures != 0 && report.failures.len() >= max_failures {
                    return report;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A handful of cases across the full matrix — the cheap inline
    /// guard; `scripts/check.sh` runs the 200-case smoke via the
    /// `workload_fuzz` binary.
    #[test]
    fn small_fuzz_run_is_clean() {
        let cfg = FuzzConfig {
            cases: 8,
            scale: 10,
            script_len: 16,
            wire_every: 4,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg, 1);
        assert!(
            report.failures.is_empty(),
            "{}",
            report.failures[0].pretty()
        );
        assert_eq!(report.cases, 8);
    }
}
