//! Decontextualization (paper Section 5).
//!
//! A query `q'` issued from a node `x` of the (virtual) result of a
//! prior query must be turned into a query the sources understand
//! *without* any context: "decontextualization … produces a query q''
//! that delivers the same result with q' but without relying on the
//! context created by q and x".
//!
//! The node id carries everything needed: a skolem oid
//! `&($V, f(&XYZ123))` names the plan variable the node was bound to
//! (`$V`), the `crElt` that built it (skolem function `f`), and the
//! group-by keys (`&XYZ123`); ancestor skolems fix the enclosing
//! groups. The algorithm (from the Section 5 prose and the Fig. 8→10
//! example):
//!
//! 1. decode the id: bound variable + `(group var, key)` pairs for the
//!    node and its enclosing constructed nodes;
//! 2. take the view plan, *drop its top `tD`* ("the top tD operator in
//!    the plan p which produced the node n is removed"), and add
//!    `select($g = &key)` fixing selections;
//! 3. in the query plan, replace `mksrc(root, $z)` with a `getD` from
//!    the decoded variable over that plan ("replace references to the
//!    node n … by a plan constructed by replacing operators of the form
//!    mksrc(&root, $Z)").
//!
//! The result is handed to the rewriter, which pushes the fixing
//! selections into the source SQL (Fig. 10 → Fig. 22's
//! `select($C = &XYZ123)` becoming `WHERE c1.id = 'XYZ123'`).

use crate::splice::{alpha_rename, children_of, replace_mksrc};
use mix_algebra::{Cond, Op, Plan};
use mix_common::{MixError, Name, Result};
use mix_engine::NodeContext;
use mix_xml::{LabelPath, Oid, Step};

/// Build the decontextualized plan for `query` issued from a node with
/// context `ctx` inside the result of `view` (the view's *logical*,
/// pre-split plan).
pub fn decontextualize(query: &Plan, ctx: &NodeContext, view: &Plan) -> Result<Plan> {
    // 1. Decode the node's own id.
    let (func, var, args) = ctx.oid.as_skolem().ok_or_else(|| {
        MixError::invalid(format!(
            "query-in-place from node {} requires a constructed (skolem) node; \
             navigate to an enclosing constructed element or query from the result root",
            ctx.oid
        ))
    })?;
    // 2. The view body without its top tD.
    let Op::TupleDestroy { input: body, .. } = &view.root else {
        return Err(MixError::invalid("view plan must be rooted at tD"));
    };
    // Alpha-rename the view body away from the query's variables.
    let qvars = mix_algebra::plan::all_vars(&query.root);
    let (body, mapping) = alpha_rename(body, &qvars);
    let mapped = |n: &Name| mapping.get(n).cloned().unwrap_or_else(|| n.clone());

    // The crElt that constructed the node gives the element label and
    // the group-by variables the skolem arguments fix.
    let celt = find_crelt(&body, &mapped(func)).ok_or_else(|| {
        MixError::invalid(format!("skolem function {func} not found in the view plan"))
    })?;
    let (label, bound_var) = match celt {
        Op::CrElt { label, .. } => (label.clone(), mapped(var)),
        _ => unreachable!(),
    };

    // 3. Fixing selections: the node's own skolem plus every enclosing
    // skolem id fixes its group variables to the decoded keys. Each
    // selection is inserted directly above the *producer* of its group
    // variable — group variables bound below a `gBy` are not in scope
    // at the plan top.
    let mut fixed = body;
    let fix_from_skolem =
        |plan: Op, f: &Name, args: &[Oid], mapped: &dyn Fn(&Name) -> Name| -> Result<Op> {
            let Some(Op::CrElt { group, .. }) = find_crelt(&plan, &mapped(f)) else {
                // An enclosing skolem from a different query generation —
                // not in this view plan; ignore (its keys are implied by
                // the node's own chain).
                return Ok(plan);
            };
            let group = group.clone();
            if group.len() != args.len() {
                return Err(MixError::invalid(format!(
                    "skolem {f} arity {} does not match group-by list {:?}",
                    args.len(),
                    group
                )));
            }
            let mut out = plan;
            for (g, key) in group.iter().zip(args) {
                let cond = Cond::OidEq {
                    var: mapped(g),
                    oid: key.clone(),
                };
                out = wrap_producer(&out, &mapped(g), &cond).ok_or_else(|| {
                    MixError::invalid(format!(
                        "group variable {} has no producer in the view plan",
                        g.display_var()
                    ))
                })?;
            }
            Ok(out)
        };
    fixed = fix_from_skolem(fixed, func, args, &mapped)?;
    for anc in &ctx.ancestors {
        if let Some((af, _, aargs)) = anc.as_skolem() {
            fixed = fix_from_skolem(fixed, af, aargs, &mapped)?;
        }
    }

    // 4. The bound variable may live below the view's grouping
    // machinery ($P for OrderInfo nodes in Fig. 6); peel the purely
    // constructive suffix (crElt/cat/apply/gBy/orderBy) off the body
    // until the variable is in scope. Filters stay (they restrict the
    // tuples the node was built from).
    let fixed = expose_var(fixed, &bound_var)?;

    // 5. Substitute into the query: `mksrc(root, $z)` becomes "the
    // children of the context node": getD($V.<label>.*, $z) over the
    // fixed view body.
    let path =
        LabelPath::new(vec![Step::Label(label), Step::Wild]).expect("two-step path is valid");
    let root = replace_mksrc(&query.root, crate::session::QUERY_ROOT, &|z| Op::GetD {
        input: Box::new(fixed.clone()),
        from: bound_var.clone(),
        path: path.clone(),
        to: z.clone(),
    });
    Ok(Plan::new(root))
}

/// Drop purely constructive operators from the top of `body` until
/// `var` is exported. Selections are kept; a join/semijoin whose output
/// misses the variable is an unsupported shape.
fn expose_var(body: Op, var: &Name) -> Result<Op> {
    let env = std::collections::HashMap::new();
    let info = mix_algebra::plan::var_info(&body, &env)?;
    if info.vars.contains(var) {
        return Ok(body);
    }
    match body {
        Op::CrElt { input, .. }
        | Op::Cat { input, .. }
        | Op::Apply { input, .. }
        | Op::GroupBy { input, .. }
        | Op::OrderBy { input, .. }
        | Op::Project { input, .. } => expose_var(*input, var),
        Op::Select { input, cond } => Ok(Op::Select {
            input: Box::new(expose_var(*input, var)?),
            cond,
        }),
        other => Err(MixError::invalid(format!(
            "cannot expose {} above a {} operator for decontextualization",
            var.display_var(),
            other.name()
        ))),
    }
}

/// Wrap the operator that binds `var` with a fixing selection.
fn wrap_producer(op: &Op, var: &Name, cond: &Cond) -> Option<Op> {
    let binds = match op {
        Op::MkSrc { var: v, .. } | Op::MkSrcOver { var: v, .. } => v == var,
        Op::GetD { to, .. } => to == var,
        Op::CrElt { out, .. }
        | Op::Cat { out, .. }
        | Op::GroupBy { out, .. }
        | Op::Apply { out, .. } => out == var,
        Op::RelQuery { map, .. } => map.iter().any(|b| &b.var == var),
        _ => false,
    };
    if binds {
        return Some(Op::Select {
            input: Box::new(op.clone()),
            cond: cond.clone(),
        });
    }
    let kids = children_of(op);
    for (i, k) in kids.iter().enumerate() {
        if let Some(new) = wrap_producer(k, var, cond) {
            return Some(crate::splice::with_child_of(op, i, new));
        }
    }
    None
}

/// Find the `crElt` with the given skolem function name.
fn find_crelt<'a>(op: &'a Op, func: &Name) -> Option<&'a Op> {
    if let Op::CrElt { skolem, .. } = op {
        if skolem == func {
            return Some(op);
        }
    }
    children_of(op)
        .into_iter()
        .find_map(|c| find_crelt(c, func))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_algebra::{translate, validate};
    use mix_xquery::parse_query;

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    #[test]
    fn fig10_decontextualized_plan() {
        let view = translate(&parse_query(Q1).unwrap()).unwrap();
        // q1 (Fig. 8) issued from node y = the CustRec for XYZ123.
        let q = translate(
            &parse_query(
                "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 2000 RETURN $O",
            )
            .unwrap(),
        )
        .unwrap();
        let ctx = NodeContext {
            oid: Oid::skolem("f", "V", vec![Oid::key("XYZ123")]),
            ancestors: vec![],
        };
        let plan = decontextualize(&q, &ctx, &view).unwrap();
        validate(&plan).unwrap_or_else(|e| panic!("{e}\n{}", plan.render()));
        let text = plan.render();
        // The Fig. 10 hallmarks: the fixing selection and the spliced
        // view below the query's operators.
        assert!(text.contains("select($C = &XYZ123)"), "{text}");
        assert!(text.contains("getD($V.CustRec.*, $K)"), "{text}");
        assert!(text.contains("crElt(CustRec, f($C), $W -> $V)"), "{text}");
        assert!(!text.contains("mksrc(root,"), "{text}");
    }

    #[test]
    fn deeper_node_fixes_all_enclosing_groups() {
        let view = translate(&parse_query(Q1).unwrap()).unwrap();
        let q = translate(
            &parse_query("FOR $X IN document(root)/order WHERE $X/value > 0 RETURN $X").unwrap(),
        )
        .unwrap();
        // From an OrderInfo node: own skolem g(&28904), enclosing f(&XYZ123).
        let ctx = NodeContext {
            oid: Oid::skolem("g", "P", vec![Oid::key("28904")]),
            ancestors: vec![Oid::skolem("f", "V", vec![Oid::key("XYZ123")])],
        };
        let plan = decontextualize(&q, &ctx, &view).unwrap();
        validate(&plan).unwrap();
        let text = plan.render();
        assert!(text.contains("select($O = &28904)"), "{text}");
        assert!(text.contains("select($C = &XYZ123)"), "{text}");
        assert!(text.contains("getD($P.OrderInfo.*,"), "{text}");
    }

    #[test]
    fn non_skolem_node_is_rejected_with_guidance() {
        let view = translate(&parse_query(Q1).unwrap()).unwrap();
        let q = translate(&parse_query("FOR $X IN document(root)/x RETURN $X").unwrap()).unwrap();
        let ctx = NodeContext {
            oid: Oid::key("XYZ123"),
            ancestors: vec![],
        };
        let err = decontextualize(&q, &ctx, &view).unwrap_err();
        assert!(err.to_string().contains("constructed"), "{err}");
    }
}
