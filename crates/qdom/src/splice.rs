//! Plan splicing: substituting a view plan for `mksrc` operators.

use mix_algebra::plan::{all_vars, fresh_var, rename_skolem_tags, rename_var};
use mix_algebra::{Op, Plan};
use mix_common::Name;
use std::collections::HashMap;

/// Alpha-rename `view` so none of its variables collide with
/// `taken_vars`. Returns the renamed plan and the old→new mapping.
pub fn alpha_rename(view: &Op, taken_vars: &[Name]) -> (Op, HashMap<Name, Name>) {
    let mut renamed = view.clone();
    let mut taken: Vec<Name> = taken_vars.to_vec();
    taken.extend(all_vars(view));
    let mut mapping = HashMap::new();
    for v in all_vars(view) {
        if taken_vars.contains(&v) {
            let fresh = fresh_var(&format!("{v}v"), &taken);
            taken.push(fresh.clone());
            renamed = rename_var(&renamed, &v, &fresh);
            mapping.insert(v, fresh);
        } else {
            mapping.insert(v.clone(), v);
        }
    }
    // Composition renames are part of node identity (they run the same
    // under every evaluation mode), so the oid tags follow along —
    // unlike rewrite-internal hygiene renames, which leave tags alone.
    let renamed = rename_skolem_tags(&renamed, &mapping);
    (renamed, mapping)
}

/// Replace every `mksrc(source, $v)` on `source_name` with the spliced
/// subtree produced by `make(var)`.
pub fn replace_mksrc(op: &Op, source_name: &str, make: &dyn Fn(&Name) -> Op) -> Op {
    match op {
        Op::MkSrc { source, var } if source.as_str() == source_name => make(var),
        _ => {
            let kids = crate::splice::children_of(op);
            let mut out = op.clone();
            for (i, k) in kids.iter().enumerate() {
                out = crate::splice::with_child_of(&out, i, replace_mksrc(k, source_name, make));
            }
            out
        }
    }
}

/// Does the plan reference the given source with `mksrc`?
pub fn references_source(op: &Op, source_name: &str) -> bool {
    match op {
        Op::MkSrc { source, .. } => source.as_str() == source_name,
        _ => children_of(op)
            .iter()
            .any(|c| references_source(c, source_name)),
    }
}

/// Naive composition (Fig. 13): query plan with the view plan inlined
/// under `mksrc` via [`Op::MkSrcOver`].
pub fn compose(query: &Plan, source_name: &str, view: &Plan) -> Plan {
    let qvars = all_vars(&query.root);
    let (view_renamed, _) = alpha_rename(&view.root, &qvars);
    let root = replace_mksrc(&query.root, source_name, &|var| Op::MkSrcOver {
        input: Box::new(view_renamed.clone()),
        var: var.clone(),
    });
    Plan::new(root)
}

// Local copies of the child-walk helpers (they live in mix-rewrite's
// private util module; duplicated here to keep crate boundaries clean).

pub(crate) fn children_of(op: &Op) -> Vec<&Op> {
    let mut c = op.inputs();
    if let Op::Apply { plan, .. } = op {
        c.push(plan);
    }
    c
}

pub(crate) fn with_child_of(op: &Op, n: usize, new: Op) -> Op {
    let mut op = op.clone();
    let boxed = Box::new(new);
    match &mut op {
        Op::MkSrcOver { input, .. }
        | Op::GetD { input, .. }
        | Op::Select { input, .. }
        | Op::Project { input, .. }
        | Op::CrElt { input, .. }
        | Op::Cat { input, .. }
        | Op::TupleDestroy { input, .. }
        | Op::GroupBy { input, .. }
        | Op::OrderBy { input, .. } => {
            assert_eq!(n, 0);
            *input = boxed;
        }
        Op::Apply { input, plan, .. } => match n {
            0 => *input = boxed,
            1 => *plan = boxed,
            _ => panic!("apply has two children"),
        },
        Op::Join { left, right, .. } | Op::SemiJoin { left, right, .. } => match n {
            0 => *left = boxed,
            1 => *right = boxed,
            _ => panic!("join has two children"),
        },
        Op::MkSrc { .. } | Op::NestedSrc { .. } | Op::RelQuery { .. } | Op::Empty { .. } => {
            panic!("leaf operator has no children")
        }
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_algebra::{translate, translate_with_root, validate};
    use mix_xquery::parse_query;

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    #[test]
    fn compose_produces_fig13_shape() {
        let view = translate_with_root(&parse_query(Q1).unwrap(), "rootv").unwrap();
        let q = translate(
            &parse_query(
                "FOR $R in document(rootv)/CustRec $S in $R/OrderInfo \
             WHERE $S/order/value > 20000 RETURN $R",
            )
            .unwrap(),
        )
        .unwrap();
        let naive = compose(&q, "rootv", &view);
        validate(&naive).unwrap();
        let text = naive.render();
        assert!(text.contains("mksrc(<view>, $K)"), "{text}");
        assert!(
            text.contains("tD($Vv0, rootv)") || text.contains("tD($V, rootv)"),
            "{text}"
        );
        assert!(!super::references_source(&naive.root, "rootv"), "{text}");
    }

    #[test]
    fn alpha_rename_avoids_collisions() {
        let view = translate(&parse_query(Q1).unwrap()).unwrap();
        let taken = [mix_common::Name::new("C"), mix_common::Name::new("V")];
        let (renamed, mapping) = alpha_rename(&view.root, &taken);
        let vars = all_vars(&renamed);
        assert!(!vars.contains(&mix_common::Name::new("C")));
        assert!(!vars.contains(&mix_common::Name::new("V")));
        assert_ne!(
            mapping[&mix_common::Name::new("C")],
            mix_common::Name::new("C")
        );
        // untouched vars map to themselves
        assert_eq!(
            mapping[&mix_common::Name::new("O")],
            mix_common::Name::new("O")
        );
    }

    #[test]
    fn references_source_detects() {
        let view = translate(&parse_query(Q1).unwrap()).unwrap();
        assert!(references_source(&view.root, "root1"));
        assert!(references_source(&view.root, "root2"));
        assert!(!references_source(&view.root, "rootv"));
    }
}
