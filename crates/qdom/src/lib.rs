//! QDOM — the Querible Document Object Model (paper Sections 2, 5, 6).
//!
//! QDOM is the client API "that natively supports interleaved querying
//! and navigation of XML data": the DOM-subset navigation commands
//!
//! * `d(p)` — first child,
//! * `r(p)` — right sibling,
//! * `fl(p)` — label fetch,
//! * `fv(p)` — value fetch,
//!
//! plus the *in-place query* command `q(query, p)`, which may be issued
//! from **any node `p`** reached by navigation and returns the root of a
//! new virtual answer document.
//!
//! Issuing `q` from the root of a previous result is *composition*
//! (Section 6): the view plan is spliced under the query and the
//! rewriter optimizes the combination. Issuing `q` from an interior
//! node is *decontextualization* (Section 5): the node's skolem id —
//! which encodes the bound variable and the enclosing group-by keys —
//! is decoded into fixing selections (`select($C = &XYZ123)`, Fig. 10),
//! producing a standalone query the sources can answer with no context
//! mechanism at all.

pub mod decontext;
pub mod mediator;
pub(crate) mod plancache;
pub mod session;
pub mod splice;

pub use mediator::{Mediator, MediatorOptions, MediatorOptionsBuilder};
pub use plancache::{SharedPlanCache, DEFAULT_PLAN_CACHE_CAP};
pub use session::{QNode, QdomSession, ResultInfo};
