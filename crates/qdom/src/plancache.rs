//! Decontextualized-plan cache.
//!
//! Decontextualizing `q(query, p)` runs the full translate → splice →
//! rewrite pipeline even though sibling nodes (the paper's canonical
//! navigation pattern: walk the `CustRec` list, refine each one) differ
//! *only* in the key constants baked into their skolem ids. This cache
//! keys on everything about a query-in-place *except* those constants —
//! the query text, the producing result, and the skolem *structure* of
//! the node's id — and on a hit re-instantiates the cached plan pair by
//! substituting the old node's keys for the new node's keys:
//!
//! * `$v = &oid` fixing selections ([`Cond::OidEq`]) get the new oid;
//! * SQL constants the rewriter derived from a key (`WHERE c1.id =
//!   'DEF345'`) get the new key's parsed value.
//!
//! Substitution is only sound when the old keys are *unambiguous*
//! markers in the template, so caching is refused when a key collides
//! with a constant the query or view mentions on its own, when a key
//! text contains the composite-key separator `|`, and a hit is refused
//! when two old slots map to conflicting new values. All refusals fall
//! back to the ordinary (correct, slower) pipeline.
//!
//! Templates come in two tiers: every session owns a small private
//! [`PlanCache`], and a server can additionally hand its sessions one
//! process-wide [`SharedPlanCache`] (a sharded, mutex-striped LRU of
//! `Arc`'d templates) so the Nth session to walk the same navigation
//! pattern hits plans the first one compiled. Templates are immutable
//! once built — instantiation substitutes into a *clone* — which is
//! what makes sharing them across threads safe and hits clone-free.

use mix_algebra::{Cond, CondArg, Op, Plan};
use mix_common::{BlockPolicy, Name, PrefetchPolicy, ShardedLru, Stats, Value, DEFAULT_SHARDS};
use mix_engine::NodeContext;
use mix_relational::Operand;
use mix_rewrite::RewriteTrace;
use mix_xml::{oid::OidKind, Oid};
use std::sync::Arc;

use crate::splice::{children_of, with_child_of};

/// How many distinct (query, result, shape) templates a session keeps
/// by default (and the default per-shard capacity of a
/// [`SharedPlanCache`]).
pub const DEFAULT_PLAN_CACHE_CAP: usize = 16;

/// The skolem structure of a node id, with key values erased: for the
/// node and each skolem ancestor, the skolem function, bound variable,
/// and argument count. Two sibling `CustRec` nodes share a shape; their
/// ids differ only in the argument oids (the *slots*).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SkolemShape(Vec<(String, String, usize)>);

/// Cache key: one query text issued from one result at one shape,
/// compiled under one set of plan-shaping knobs, against one set of
/// backends. The knobs matter: a cached physical plan bakes in kernel
/// choices (`hash_joins`) and the block policy captured at build time,
/// so an entry compiled under one knob setting must never be replayed
/// under another. The backend fingerprint matters for the *shared*
/// cache: two mediators over different databases (or different shard
/// layouts) may issue identical query texts whose cached SQL is only
/// correct against the catalog it was compiled for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    query: String,
    result: usize,
    shape: SkolemShape,
    hash_joins: bool,
    block: BlockPolicy,
    prefetch: PrefetchPolicy,
    columnar: bool,
    backend: u64,
}

impl CacheKey {
    /// The key and slot oids for issuing `query` from a node with
    /// context `ctx` in result `result`, compiled with the given
    /// plan-shape knobs against the catalog whose backends fingerprint
    /// to `backend` (see [`mix_wrapper::Catalog`] in the session).
    /// `None` when the node's id is not a skolem term
    /// (decontextualization will fail anyway).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        query: &str,
        result: usize,
        ctx: &NodeContext,
        hash_joins: bool,
        block: BlockPolicy,
        prefetch: PrefetchPolicy,
        columnar: bool,
        backend: u64,
    ) -> Option<(CacheKey, Vec<Oid>)> {
        let (func, var, args) = ctx.oid.as_skolem()?;
        let mut shape = vec![(func.to_string(), var.to_string(), args.len())];
        let mut slots: Vec<Oid> = args.to_vec();
        for anc in &ctx.ancestors {
            match anc.as_skolem() {
                Some((f, v, a)) => {
                    shape.push((f.to_string(), v.to_string(), a.len()));
                    slots.extend(a.iter().cloned());
                }
                // Keep non-skolem ancestors in the shape so a node under
                // a source element never aliases one under a constructed
                // element.
                None => shape.push((String::new(), String::new(), 0)),
            }
        }
        let key = CacheKey {
            query: query.to_string(),
            result,
            shape: SkolemShape(shape),
            hash_joins,
            // Fixed(0) and Fixed(1) compile to the same plans.
            block: block.normalized(),
            // Depth(0) clamps to Depth(1) at the cursor; same plans.
            prefetch: prefetch.normalized(),
            // The block representation is a session knob too: a replayed
            // plan must decode the way its EXPLAIN (`repr=`) promised.
            columnar,
            backend,
        };
        Some((key, slots))
    }
}

/// One immutable decontextualized template. Shared freely (the shared
/// cache hands out `Arc`s); instantiation substitutes into clones.
pub(crate) struct CachedPlan {
    exec: Plan,
    logical: Plan,
    /// The pre-optimization (spliced) plan — what `explain` shows as
    /// the logical plan; re-instantiated like the other two.
    naive: Plan,
    trace: RewriteTrace,
    slots: Vec<Oid>,
}

/// Instantiate a template for a node whose slots are `new_slots`,
/// renaming the result root to `result_name`. `None` when substitution
/// would be ambiguous. Shared by both cache tiers.
fn instantiate(
    cached: &CachedPlan,
    new_slots: &[Oid],
    result_name: &str,
) -> Option<(Plan, Plan, Plan, RewriteTrace)> {
    let (omap, vmap) = substitution(&cached.slots, new_slots)?;
    let exec = rename_root(&subst_plan(&cached.exec, &omap, &vmap), result_name);
    let logical = rename_root(&subst_plan(&cached.logical, &omap, &vmap), result_name);
    let naive = rename_root(&subst_plan(&cached.naive, &omap, &vmap), result_name);
    Some((exec, logical, naive, cached.trace.clone()))
}

/// Build a template from a freshly decontextualized plan pair, or
/// `None` when its slots are not unambiguous markers (see the guards
/// below). Shared by both cache tiers.
#[allow(clippy::too_many_arguments)]
fn make_template(
    slots: Vec<Oid>,
    exec: &Plan,
    logical: &Plan,
    naive: &Plan,
    trace: &RewriteTrace,
    query_plan: &Plan,
    view_plan: &Plan,
) -> Option<CachedPlan> {
    if !cacheable(&slots, query_plan, view_plan) {
        return None;
    }
    Some(CachedPlan {
        exec: exec.clone(),
        logical: logical.clone(),
        naive: naive.clone(),
        trace: trace.clone(),
        slots,
    })
}

/// A small per-session LRU of decontextualized plan templates.
pub(crate) struct PlanCache {
    entries: Vec<(CacheKey, Arc<CachedPlan>)>,
    cap: usize,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::with_cap(DEFAULT_PLAN_CACHE_CAP)
    }
}

impl PlanCache {
    /// An empty cache keeping at most `cap` templates (clamped ≥ 1).
    pub(crate) fn with_cap(cap: usize) -> PlanCache {
        PlanCache {
            entries: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Instantiate a cached template for a node whose slots are
    /// `new_slots`, renaming the result root to `result_name`. `None`
    /// on a structural miss or when substitution would be ambiguous.
    pub(crate) fn lookup(
        &mut self,
        key: &CacheKey,
        new_slots: &[Oid],
        result_name: &str,
    ) -> Option<(Plan, Plan, Plan, RewriteTrace)> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let out = instantiate(&self.entries[pos].1, new_slots, result_name)?;
        // LRU bump (a hit is a hit either way).
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(out)
    }

    /// Remember a freshly decontextualized plan pair as a template, if
    /// its slots are unambiguous markers (see the guards below).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert(
        &mut self,
        key: CacheKey,
        slots: Vec<Oid>,
        exec: &Plan,
        logical: &Plan,
        naive: &Plan,
        trace: &RewriteTrace,
        query_plan: &Plan,
        view_plan: &Plan,
    ) {
        let Some(t) = make_template(slots, exec, logical, naive, trace, query_plan, view_plan)
        else {
            return;
        };
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, Arc::new(t)));
        self.entries.truncate(self.cap);
    }
}

/// A process-wide, thread-safe plan-template cache shared across
/// sessions (and across mediators over the same catalog): a sharded,
/// mutex-striped LRU of `Arc`'d templates. Hand one to
/// [`MediatorOptions::builder`](crate::MediatorOptions::builder) via
/// `shared_plan_cache` and every session of that mediator consults it
/// before (and instead of) its private cache — the Nth session to walk
/// a navigation pattern hits the plans the first one compiled.
///
/// Each session still counts its *own* `PlanCacheHits`/`Misses`; the
/// cache's [`SharedPlanCache::stats`] carries the process-wide
/// cross-session hit rate and `PlanCacheShardContention`.
#[derive(Debug)]
pub struct SharedPlanCache {
    inner: ShardedLru<CacheKey, CachedPlan>,
}

impl Default for SharedPlanCache {
    fn default() -> SharedPlanCache {
        SharedPlanCache::new(DEFAULT_SHARDS, DEFAULT_PLAN_CACHE_CAP)
    }
}

impl SharedPlanCache {
    /// A cache of `shards` stripes keeping at most `per_shard_cap`
    /// templates each (both clamped ≥ 1).
    pub fn new(shards: usize, per_shard_cap: usize) -> SharedPlanCache {
        SharedPlanCache {
            inner: ShardedLru::new(shards, per_shard_cap),
        }
    }

    /// Process-wide counters: `PlanCacheHits`/`Misses` (the
    /// cross-session hit rate) and `PlanCacheShardContention`.
    pub fn stats(&self) -> &Stats {
        self.inner.stats()
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Per-stripe capacity.
    pub fn per_shard_cap(&self) -> usize {
        self.inner.per_shard_cap()
    }

    /// Total templates currently cached (racy snapshot).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Look up and instantiate — the shard lock is held only for the
    /// lookup itself; substitution runs on the caller's thread against
    /// the `Arc`'d template.
    pub(crate) fn lookup(
        &self,
        key: &CacheKey,
        new_slots: &[Oid],
        result_name: &str,
    ) -> Option<(Plan, Plan, Plan, RewriteTrace)> {
        let cached = self.inner.get(key)?;
        instantiate(&cached, new_slots, result_name)
    }

    /// Remember a freshly decontextualized plan pair, if cacheable.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert(
        &self,
        key: CacheKey,
        slots: Vec<Oid>,
        exec: &Plan,
        logical: &Plan,
        naive: &Plan,
        trace: &RewriteTrace,
        query_plan: &Plan,
        view_plan: &Plan,
    ) {
        let Some(t) = make_template(slots, exec, logical, naive, trace, query_plan, view_plan)
        else {
            return;
        };
        self.inner.insert(key, Arc::new(t));
    }
}

/// The guards that make key substitution sound. A slot must not:
/// * carry the composite-key separator `|` (the rewriter splits such a
///   key across several SQL columns — a later single substitution could
///   not reassemble it);
/// * collide with an oid or constant the query or view plan mentions on
///   its own (substitution could not tell a key occurrence from a
///   user-written constant).
fn cacheable(slots: &[Oid], query_plan: &Plan, view_plan: &Plan) -> bool {
    let mut values = Vec::new();
    let mut oids = Vec::new();
    collect_protected(&query_plan.root, &mut values, &mut oids);
    collect_protected(&view_plan.root, &mut values, &mut oids);
    slots.iter().all(|s| {
        if oids.contains(s) {
            return false;
        }
        match s.kind() {
            OidKind::Key(text) => {
                !text.contains('|') && !values.contains(&Value::parse_literal(text))
            }
            _ => true,
        }
    })
}

/// Constants and oids already present in a plan before
/// decontextualization adds the key-fixing selections.
fn collect_protected(op: &Op, values: &mut Vec<Value>, oids: &mut Vec<Oid>) {
    match op {
        Op::Select { cond, .. } => collect_cond(cond, values, oids),
        Op::Join { cond, .. } | Op::SemiJoin { cond, .. } => {
            if let Some(c) = cond {
                collect_cond(c, values, oids);
            }
        }
        Op::RelQuery { sql, .. } => {
            for p in &sql.preds {
                if let Operand::Const(v) = &p.rhs {
                    values.push(v.clone());
                }
            }
        }
        _ => {}
    }
    for k in children_of(op) {
        collect_protected(k, values, oids);
    }
}

fn collect_cond(c: &Cond, values: &mut Vec<Value>, oids: &mut Vec<Oid>) {
    match c {
        Cond::Cmp { l, r, .. } => {
            for a in [l, r] {
                if let CondArg::Const(v) = a {
                    values.push(v.clone());
                }
            }
        }
        Cond::OidEq { oid, .. } => oids.push(oid.clone()),
        Cond::OidCmp { .. } => {}
        Cond::And(cs) => cs.iter().for_each(|c| collect_cond(c, values, oids)),
    }
}

type OidMap = Vec<(Oid, Oid)>;
type ValueMap = Vec<(Value, Value)>;

/// The simultaneous substitution maps old slots → new slots, or `None`
/// when the mapping would be inconsistent (one old key needing two
/// different replacements) or inexpressible (a new composite key where
/// the template holds a split single-column predicate).
fn substitution(old: &[Oid], new: &[Oid]) -> Option<(OidMap, ValueMap)> {
    if old.len() != new.len() {
        return None;
    }
    let mut omap: OidMap = Vec::new();
    let mut vmap: ValueMap = Vec::new();
    for (o, n) in old.iter().zip(new) {
        match omap.iter().find(|(k, _)| k == o) {
            Some((_, mapped)) if mapped != n => return None,
            Some(_) => continue,
            None => omap.push((o.clone(), n.clone())),
        }
        if let OidKind::Key(otext) = o.kind() {
            // The rewriter may have turned this key into a SQL constant.
            let OidKind::Key(ntext) = n.kind() else {
                return None;
            };
            if ntext.contains('|') {
                return None;
            }
            let ov = Value::parse_literal(otext);
            let nv = Value::parse_literal(ntext);
            match vmap.iter().find(|(k, _)| *k == ov) {
                Some((_, mapped)) if *mapped != nv => return None,
                Some(_) => {}
                None => vmap.push((ov, nv)),
            }
        }
    }
    Some((omap, vmap))
}

/// Apply the slot substitution to every `OidEq` condition and every SQL
/// constant of a plan.
fn subst_plan(plan: &Plan, omap: &OidMap, vmap: &ValueMap) -> Plan {
    Plan::new(subst_op(&plan.root, omap, vmap))
}

fn subst_op(op: &Op, omap: &OidMap, vmap: &ValueMap) -> Op {
    let head = match op {
        Op::Select { input, cond } => Op::Select {
            input: input.clone(),
            cond: subst_cond(cond, omap),
        },
        Op::Join { left, right, cond } => Op::Join {
            left: left.clone(),
            right: right.clone(),
            cond: cond.as_ref().map(|c| subst_cond(c, omap)),
        },
        Op::SemiJoin {
            left,
            right,
            cond,
            keep,
        } => Op::SemiJoin {
            left: left.clone(),
            right: right.clone(),
            cond: cond.as_ref().map(|c| subst_cond(c, omap)),
            keep: *keep,
        },
        Op::RelQuery { server, sql, map } => {
            let mut sql = sql.clone();
            for p in &mut sql.preds {
                if let Operand::Const(v) = &p.rhs {
                    if let Some((_, n)) = vmap.iter().find(|(o, _)| o == v) {
                        p.rhs = Operand::Const(n.clone());
                    }
                }
            }
            Op::RelQuery {
                server: server.clone(),
                sql,
                map: map.clone(),
            }
        }
        other => other.clone(),
    };
    let mut out = head;
    for (i, k) in children_of(op).into_iter().enumerate() {
        out = with_child_of(&out, i, subst_op(k, omap, vmap));
    }
    out
}

fn subst_cond(c: &Cond, omap: &OidMap) -> Cond {
    match c {
        Cond::OidEq { var, oid } => {
            let oid = omap
                .iter()
                .find(|(o, _)| o == oid)
                .map(|(_, n)| n.clone())
                .unwrap_or_else(|| oid.clone());
            Cond::OidEq {
                var: var.clone(),
                oid,
            }
        }
        Cond::And(cs) => Cond::And(cs.iter().map(|c| subst_cond(c, omap)).collect()),
        other => other.clone(),
    }
}

/// The cached template carries the root name of the result it was
/// compiled for (`rootv3`); each instantiation gets the current one.
fn rename_root(plan: &Plan, result_name: &str) -> Plan {
    let mut root = plan.root.clone();
    if let Op::TupleDestroy { root: r, .. } = &mut root {
        if r.is_some() {
            *r = Some(Name::new(result_name));
        }
    }
    Plan::new(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_common::CmpOp;

    fn key_slot(text: &str) -> Oid {
        Oid::key(text)
    }

    fn empty_plan() -> Plan {
        Plan::new(Op::Empty { vars: vec![] })
    }

    #[test]
    fn substitution_consistency() {
        // Same old slot twice: consistent → ok, conflicting → refused.
        let a = key_slot("A");
        let b = key_slot("B");
        let c = key_slot("C");
        assert!(substitution(&[a.clone(), a.clone()], &[b.clone(), b.clone()]).is_some());
        assert!(substitution(&[a.clone(), a.clone()], &[b.clone(), c.clone()]).is_none());
        // Swaps are fine: the maps are applied simultaneously.
        let (omap, _) = substitution(&[a.clone(), b.clone()], &[b.clone(), a.clone()]).unwrap();
        assert_eq!(omap.len(), 2);
        // Composite new key can't replace a split single-column pred.
        assert!(substitution(&[a], &[key_slot("X|Y")]).is_none());
    }

    #[test]
    fn guards_refuse_ambiguous_slots() {
        let q = Plan::new(Op::Select {
            input: Box::new(Op::Empty {
                vars: vec![Name::new("x")],
            }),
            cond: Cond::cmp_const("x", CmpOp::Eq, "DEF345"),
        });
        // The query itself mentions the key constant.
        assert!(!cacheable(&[key_slot("DEF345")], &q, &empty_plan()));
        assert!(cacheable(&[key_slot("XYZ123")], &q, &empty_plan()));
        // Composite keys are never cached.
        assert!(!cacheable(&[key_slot("A|B")], &empty_plan(), &empty_plan()));
    }

    #[test]
    fn lru_evicts_beyond_capacity() {
        let mut cache = PlanCache::default();
        let shape = SkolemShape(vec![("f".into(), "V".into(), 1)]);
        for i in 0..(DEFAULT_PLAN_CACHE_CAP + 4) {
            let key = CacheKey {
                query: format!("q{i}"),
                result: 0,
                shape: shape.clone(),
                hash_joins: true,
                block: BlockPolicy::Auto,
                prefetch: PrefetchPolicy::Off,
                columnar: true,
                backend: 0,
            };
            cache.insert(
                key,
                vec![key_slot("K")],
                &empty_plan(),
                &empty_plan(),
                &empty_plan(),
                &RewriteTrace::default(),
                &empty_plan(),
                &empty_plan(),
            );
        }
        assert_eq!(cache.entries.len(), DEFAULT_PLAN_CACHE_CAP);
        // The oldest entries were evicted.
        let key0 = CacheKey {
            query: "q0".into(),
            result: 0,
            shape,
            hash_joins: true,
            block: BlockPolicy::Auto,
            prefetch: PrefetchPolicy::Off,
            columnar: true,
            backend: 0,
        };
        assert!(cache.lookup(&key0, &[key_slot("K")], "rootv0").is_none());
    }

    #[test]
    fn plan_shape_knobs_partition_the_key() {
        // A template cached under one (hash_joins, block) setting must
        // not be replayed under another — toggling an ablation knob
        // changes the physical plan the cache would hand back.
        let mut cache = PlanCache::default();
        let ctx = NodeContext {
            oid: Oid::skolem("f", "V", vec![key_slot("DEF345")]),
            ancestors: vec![],
        };
        let pf = PrefetchPolicy::Off;
        let (key, slots) =
            CacheKey::new("q", 0, &ctx, true, BlockPolicy::Auto, pf, true, 0).expect("skolem oid");
        cache.insert(
            key,
            slots.clone(),
            &empty_plan(),
            &empty_plan(),
            &empty_plan(),
            &RewriteTrace::default(),
            &empty_plan(),
            &empty_plan(),
        );
        // Same query/node, different knobs: structural misses.
        let (nl_key, _) =
            CacheKey::new("q", 0, &ctx, false, BlockPolicy::Auto, pf, true, 0).unwrap();
        assert!(cache.lookup(&nl_key, &slots, "rootv1").is_none());
        let (off_key, _) =
            CacheKey::new("q", 0, &ctx, true, BlockPolicy::Off, pf, true, 0).unwrap();
        assert!(cache.lookup(&off_key, &slots, "rootv1").is_none());
        let (pf_key, _) = CacheKey::new(
            "q",
            0,
            &ctx,
            true,
            BlockPolicy::Auto,
            PrefetchPolicy::Auto,
            true,
            0,
        )
        .unwrap();
        assert!(cache.lookup(&pf_key, &slots, "rootv1").is_none());
        let (row_key, _) =
            CacheKey::new("q", 0, &ctx, true, BlockPolicy::Auto, pf, false, 0).unwrap();
        assert!(cache.lookup(&row_key, &slots, "rootv1").is_none());
        // The original knobs still hit, and Fixed(0) normalizes to
        // Fixed(1) rather than minting a third key for the same plans.
        let (same, _) = CacheKey::new("q", 0, &ctx, true, BlockPolicy::Auto, pf, true, 0).unwrap();
        assert!(cache.lookup(&same, &slots, "rootv1").is_some());
        let (f0, _) =
            CacheKey::new("q", 0, &ctx, true, BlockPolicy::Fixed(0), pf, true, 0).unwrap();
        let (f1, _) =
            CacheKey::new("q", 0, &ctx, true, BlockPolicy::Fixed(1), pf, true, 0).unwrap();
        assert_eq!(f0, f1);
        // Depth(0) normalizes to Depth(1) likewise.
        let (d0, _) = CacheKey::new(
            "q",
            0,
            &ctx,
            true,
            BlockPolicy::Auto,
            PrefetchPolicy::Depth(0),
            true,
            0,
        )
        .unwrap();
        let (d1, _) = CacheKey::new(
            "q",
            0,
            &ctx,
            true,
            BlockPolicy::Auto,
            PrefetchPolicy::Depth(1),
            true,
            0,
        )
        .unwrap();
        assert_eq!(d0, d1);
    }
}
