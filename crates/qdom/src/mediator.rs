//! The MIX mediator: sources, views, and session factory.

use crate::plancache::{SharedPlanCache, DEFAULT_PLAN_CACHE_CAP};
use mix_algebra::{translate_with_root, Plan};
use mix_common::{BlockPolicy, MixError, Name, PrefetchPolicy, Result, RetryPolicy};
use mix_engine::{AccessMode, GByMode};
use mix_obs::TracerHandle;
use mix_wrapper::Catalog;
use mix_xquery::parse_query;
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluation policy knobs (the benchmark axes).
///
/// Construct with [`MediatorOptions::builder`]; the struct is
/// `#[non_exhaustive]`, so new knobs are not breaking changes:
///
/// ```ignore
/// let opts = MediatorOptions::builder()
///     .hash_joins(false)
///     .tracer(TracerHandle::new(my_tracer))
///     .build();
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MediatorOptions {
    /// Navigation-driven lazy evaluation (the paper's mode) or the
    /// conventional full-materialization baseline.
    pub access: AccessMode,
    /// Run the rewriting optimizer + SQL pushdown (Section 6), or
    /// execute naive plans as-is (the comparison strawman).
    pub optimize: bool,
    /// Which `groupBy` implementation the lazy engine uses.
    pub gby: GByMode,
    /// Use the hash join/semi-join kernels where possible (`false`
    /// forces nested loops — the ablation baseline).
    pub hash_joins: bool,
    /// Where spans and events go. Sessions thread this handle through
    /// the engine and the relational sources. Defaults to a
    /// [`mix_obs::LogTracer`] gated on the `MIX_TRACE` environment
    /// variable — disabled (and zero-cost) unless the variable is set,
    /// in which case spans stream to stderr.
    pub tracer: TracerHandle,
    /// Block-at-a-time execution: how many tuples cursors and
    /// vectorized operators may fetch per pull.
    /// [`BlockPolicy::Off`] is the paper's one-tuple-per-pull model;
    /// [`BlockPolicy::Auto`] (the default) ramps 1, 2, 4, … up to
    /// [`mix_common::MAX_AUTO_BLOCK`], so navigate-and-stop sessions
    /// still ship a single tuple while drains converge to full blocks.
    pub block: BlockPolicy,
    /// How transient backend faults are retried (bounded exponential
    /// backoff, optional per-command deadline). The default retries 4
    /// times with no sleep; [`RetryPolicy::none`] surfaces every fault
    /// immediately.
    pub retry: RetryPolicy,
    /// Pipelined prefetch at the backend cursor boundary.
    /// [`PrefetchPolicy::Off`] (the default) is the paper's strictly
    /// demand-driven protocol; `Depth(n)`/`Auto` let a per-cursor
    /// background thread keep up to n blocks in flight *after* the
    /// first block has been demanded, overlapping backend round trips
    /// with mediator work (`Auto` additionally stays synchronous on
    /// zero-RTT backends, where there is nothing to overlap). Laziness,
    /// shipped-tuple accounting and the fault/retry schedule are
    /// unchanged (the prefetcher replays the consumer's block ramp).
    pub prefetch: PrefetchPolicy,
    /// Ship source blocks as typed column vectors (the default).
    /// `false` keeps the boxed per-row representation — the ablation
    /// baseline for the columnar hot path. Representation only: tuples,
    /// laziness and every shipped-data counter are identical either
    /// way. Irrelevant under [`BlockPolicy::Off`], where cursors ship
    /// one row per pull regardless.
    pub columnar: bool,
    /// How many decontextualized plan templates a session's *private*
    /// cache keeps. With a shared cache installed this knob is unused —
    /// the shared cache's own per-shard capacity governs instead.
    pub plan_cache_cap: usize,
    /// A process-wide plan-template cache shared across sessions (and
    /// across mediators built with the same handle). `None` (the
    /// default) keeps each session's cache private.
    pub shared_plan_cache: Option<Arc<SharedPlanCache>>,
}

impl Default for MediatorOptions {
    fn default() -> Self {
        MediatorOptions {
            access: AccessMode::Lazy,
            optimize: true,
            gby: GByMode::Auto,
            hash_joins: true,
            tracer: TracerHandle::new(std::sync::Arc::new(mix_obs::LogTracer::from_env())),
            block: BlockPolicy::default(),
            retry: RetryPolicy::default(),
            prefetch: PrefetchPolicy::default(),
            columnar: true,
            plan_cache_cap: DEFAULT_PLAN_CACHE_CAP,
            shared_plan_cache: None,
        }
    }
}

impl MediatorOptions {
    /// Start building options from the defaults.
    pub fn builder() -> MediatorOptionsBuilder {
        MediatorOptionsBuilder {
            opts: MediatorOptions::default(),
        }
    }
}

/// Builder for [`MediatorOptions`] (see [`MediatorOptions::builder`]).
#[derive(Debug, Clone)]
pub struct MediatorOptionsBuilder {
    opts: MediatorOptions,
}

impl MediatorOptionsBuilder {
    /// Lazy (navigation-driven) or eager (full materialization).
    pub fn access(mut self, access: AccessMode) -> Self {
        self.opts.access = access;
        self
    }

    /// Enable or disable the rewriting optimizer + SQL pushdown.
    pub fn optimize(mut self, optimize: bool) -> Self {
        self.opts.optimize = optimize;
        self
    }

    /// Pick the lazy engine's `groupBy` implementation.
    pub fn gby(mut self, gby: GByMode) -> Self {
        self.opts.gby = gby;
        self
    }

    /// Enable or disable the hash join/semi-join kernels.
    pub fn hash_joins(mut self, hash_joins: bool) -> Self {
        self.opts.hash_joins = hash_joins;
        self
    }

    /// Send spans and events to `tracer`.
    pub fn tracer(mut self, tracer: TracerHandle) -> Self {
        self.opts.tracer = tracer;
        self
    }

    /// Pick the block-at-a-time execution policy.
    pub fn block(mut self, block: BlockPolicy) -> Self {
        self.opts.block = block;
        self
    }

    /// Pick the backend retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.opts.retry = retry;
        self
    }

    /// Pick the pipelined-prefetch policy for backend cursors.
    pub fn prefetch(mut self, prefetch: PrefetchPolicy) -> Self {
        self.opts.prefetch = prefetch;
        self
    }

    /// Ship source blocks as typed column vectors (`false` = boxed-row
    /// ablation baseline).
    pub fn columnar(mut self, columnar: bool) -> Self {
        self.opts.columnar = columnar;
        self
    }

    /// Size of each session's private plan-template cache (clamped to
    /// at least 1 entry at session open).
    pub fn plan_cache_cap(mut self, cap: usize) -> Self {
        self.opts.plan_cache_cap = cap;
        self
    }

    /// Share `cache` across every session of this mediator: sessions
    /// consult (and fill) it instead of their private caches, so
    /// repeated query classes hit plans other sessions compiled.
    pub fn shared_plan_cache(mut self, cache: Arc<SharedPlanCache>) -> Self {
        self.opts.shared_plan_cache = Some(cache);
        self
    }

    /// Finish building.
    pub fn build(self) -> MediatorOptions {
        self.opts
    }
}

/// The mediator server: a catalog of wrapped sources plus named
/// virtual views.
pub struct Mediator {
    catalog: Catalog,
    views: HashMap<Name, Plan>,
    options: MediatorOptions,
}

impl Mediator {
    /// A mediator over `catalog` with default (lazy, optimizing)
    /// options.
    pub fn new(catalog: Catalog) -> Mediator {
        Mediator::with_options(catalog, MediatorOptions::default())
    }

    /// A mediator with explicit evaluation options.
    pub fn with_options(catalog: Catalog, options: MediatorOptions) -> Mediator {
        Mediator {
            catalog,
            views: HashMap::new(),
            options,
        }
    }

    /// The source catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The evaluation options.
    pub fn options(&self) -> MediatorOptions {
        self.options.clone()
    }

    /// Define a named virtual view. Client queries may then use
    /// `document(<name>)` to range over it; the mediator composes
    /// rather than materializing (Section 6).
    pub fn define_view(&mut self, name: impl Into<Name>, query_text: &str) -> Result<()> {
        let name = name.into();
        if self.catalog.source(name.as_str()).is_ok() {
            return Err(MixError::invalid(format!(
                "view name {name} collides with a registered source"
            )));
        }
        let q = parse_query(query_text)?;
        let plan = translate_with_root(&q, name.as_str())?;
        mix_algebra::validate(&plan)?;
        self.views.insert(name, plan);
        Ok(())
    }

    /// The logical plan of a view.
    pub fn view(&self, name: &str) -> Option<&Plan> {
        self.views.get(name)
    }

    /// Defined view names.
    pub fn view_names(&self) -> Vec<Name> {
        let mut v: Vec<Name> = self.views.keys().cloned().collect();
        v.sort();
        v
    }

    /// Render the plan stages for `query_text` *without executing it*:
    /// the naive logical plan (views composed in), the optimized
    /// pre-SQL-split plan, and the post-split physical plan with its
    /// `rQ` pushdowns. For per-operator execution counts, run the query
    /// in a session and use [`crate::session::QdomSession::explain`].
    pub fn explain(&self, query_text: &str) -> Result<String> {
        let q = parse_query(query_text)?;
        let mut plan = translate_with_root(&q, "rootv")?;
        for vname in self.view_names() {
            if crate::splice::references_source(&plan.root, vname.as_str()) {
                let view = self.views.get(&vname).expect("listed view exists");
                plan = crate::splice::compose(&plan, vname.as_str(), view);
            }
        }
        let (optimized, physical) = if self.options.optimize {
            let out = mix_rewrite::optimize(&plan, &self.catalog);
            (mix_rewrite::rewrite(&plan).plan, out.plan)
        } else {
            (plan.clone(), plan.clone())
        };
        mix_algebra::validate(&physical)?;
        Ok(format!(
            "== logical plan ==\n{}== optimized plan ==\n{}== physical plan ==\n{}",
            plan.render(),
            optimized.render(),
            physical.render(),
        ))
    }

    /// Open a QDOM client session borrowing this mediator.
    pub fn session(&self) -> crate::session::QdomSession<'_> {
        crate::session::QdomSession::new(self)
    }

    /// Open a QDOM client session that *owns* a handle to this
    /// mediator: no borrow ties it down, so it can outlive the stack
    /// frame and migrate across server worker threads
    /// (`QdomSession<'static>` is what the pooled server queues).
    pub fn session_arc(self: &Arc<Mediator>) -> crate::session::QdomSession<'static> {
        crate::session::QdomSession::new_owned(Arc::clone(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_wrapper::fig2_catalog;

    #[test]
    fn views_are_validated_and_named() {
        let (cat, _) = fig2_catalog();
        let mut m = Mediator::new(cat);
        m.define_view("custview", "FOR $C IN source(&root1)/customer RETURN $C")
            .unwrap();
        assert!(m.view("custview").is_some());
        assert_eq!(m.view_names().len(), 1);
        // Bad query text is rejected.
        assert!(m.define_view("bad", "FOR $C IN RETURN $C").is_err());
        // Colliding with a source is rejected.
        assert!(m
            .define_view("root1", "FOR $C IN source(&root1)/customer RETURN $C")
            .is_err());
    }
}
