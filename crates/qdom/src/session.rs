//! QDOM client sessions: the `d`/`r`/`fl`/`fv`/`q` command set.

use crate::decontext::decontextualize;
use crate::mediator::Mediator;
use crate::plancache::{CacheKey, PlanCache, SharedPlanCache};
use crate::splice::{compose, references_source};
use mix_algebra::{translate_with_root, Plan};
use mix_common::ColumnBlock;
use mix_common::{Counter, MixError, Name, Result, Value};
use mix_engine::{eager, render_annotated, AccessMode, EvalContext, NodeContext, VirtualResult};
use mix_obs::ExecProfile;
use mix_proto::{Command, Reply, WireNode};
use mix_rewrite::{optimize, rewrite, RewriteTrace};
use mix_xml::{Document, NavDoc, NodeRef, Oid};
use mix_xquery::parse_query;
use std::sync::Arc;

/// The special source name `document(root)` denotes — the node a
/// query-in-place was issued from.
pub const QUERY_ROOT: &str = "root";

/// A client-side node handle (the paper's `p₀, p₁, …`): a query result
/// plus a node id within it. Cheap to copy; stays valid for the whole
/// session ("a 'thin' client-side library associates with each pᵢ the
/// object id of the corresponding object exported by the mediator").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QNode {
    pub(crate) result: usize,
    pub(crate) node: NodeRef,
}

/// One query's result within a session.
pub struct ResultInfo {
    /// The executed plan (post-optimization).
    pub exec_plan: Plan,
    /// The logical (pre-SQL-split) plan — what composition and
    /// decontextualization splice from.
    pub logical_plan: Plan,
    /// The naive plan straight out of translation/splicing, before any
    /// rewriting — what [`QdomSession::explain`] shows as the logical
    /// plan.
    pub naive_plan: Plan,
    /// The rewrite derivation (empty when optimization is off).
    pub trace: RewriteTrace,
    /// Per-operator execution metrics over `exec_plan` — filled up
    /// front by an eager run, incrementally by navigation in a lazy
    /// one.
    pub profile: Arc<ExecProfile>,
    doc: ResultDoc,
}

enum ResultDoc {
    Lazy(Arc<VirtualResult>),
    Eager(Arc<Document>),
}

impl ResultDoc {
    fn nav(&self) -> &dyn NavDoc {
        match self {
            ResultDoc::Lazy(v) => v.as_ref(),
            ResultDoc::Eager(d) => d.as_ref(),
        }
    }

    /// One past the largest node id a client can legitimately hold for
    /// this result. Lazy results only hand out ids they have
    /// materialized, so the bound grows as navigation proceeds.
    fn node_bound(&self) -> usize {
        match self {
            ResultDoc::Lazy(v) => v.nodes_materialized(),
            ResultDoc::Eager(d) => d.len(),
        }
    }
}

/// `QNode` → wire handle (a fresh handle the session just minted).
fn wire(p: QNode) -> WireNode {
    WireNode {
        result: p.result as u32,
        node: p.node.0,
    }
}

/// Wire handle → `QNode` *without* validation — only for handles the
/// session itself produced. Arriving handles go through
/// [`QdomSession::resolve`] instead.
fn unwire(w: WireNode) -> QNode {
    QNode {
        result: w.result as usize,
        node: NodeRef(w.node),
    }
}

/// Unwrap the error out of an unexpected reply (wrapper plumbing: a
/// command answered with a variant it never produces is an internal
/// bug, not a user error).
fn reply_err(r: Reply, cmd: &str) -> MixError {
    match r {
        Reply::Err(e) => e,
        other => MixError::internal(format!("{cmd}: unexpected reply variant {other:?}")),
    }
}

/// The session's hold on its mediator: a plain borrow for in-process
/// callers, or an owned `Arc` for sessions that must be `'static` (the
/// pooled server moves sessions across worker threads).
enum MediatorRef<'m> {
    Borrowed(&'m Mediator),
    Owned(Arc<Mediator>),
}

impl MediatorRef<'_> {
    fn get(&self) -> &Mediator {
        match self {
            MediatorRef::Borrowed(m) => m,
            MediatorRef::Owned(m) => m,
        }
    }
}

/// An interactive QDOM session over a [`Mediator`].
pub struct QdomSession<'m> {
    mediator: MediatorRef<'m>,
    ctx: Arc<EvalContext>,
    results: Vec<ResultInfo>,
    /// Private template cache — the fallback when no shared cache is
    /// installed.
    plan_cache: PlanCache,
    /// The process-wide cache, when the mediator options carry one.
    shared_cache: Option<Arc<SharedPlanCache>>,
    /// Fingerprint of the catalog's backends, computed once at session
    /// start — part of every plan-cache key, so mediators over
    /// different databases (or shard layouts) sharing one
    /// [`SharedPlanCache`] never exchange templates.
    backend_fp: u64,
}

impl<'m> QdomSession<'m> {
    pub(crate) fn new(mediator: &'m Mediator) -> QdomSession<'m> {
        QdomSession::init(MediatorRef::Borrowed(mediator))
    }

    pub(crate) fn new_owned(mediator: Arc<Mediator>) -> QdomSession<'static> {
        QdomSession::init(MediatorRef::Owned(mediator))
    }

    fn init(mediator: MediatorRef<'_>) -> QdomSession<'_> {
        let opts = mediator.get().options();
        let mut ctx = EvalContext::new(mediator.get().catalog().clone(), opts.access);
        ctx.gby_mode = opts.gby;
        ctx.hash_joins = opts.hash_joins;
        ctx.tracer = opts.tracer.clone();
        ctx.block = opts.block;
        ctx.retry = opts.retry;
        ctx.prefetch = opts.prefetch;
        ctx.columnar = opts.columnar;
        // Sources share the session's tracer, so SQL issuance and row
        // shipping show up as events under the operator that caused
        // them.
        for db in mediator.get().catalog().databases() {
            db.set_tracer(opts.tracer.clone());
        }
        let backend_fp = mediator.get().catalog().fingerprint();
        QdomSession {
            ctx: Arc::new(ctx),
            results: Vec::new(),
            plan_cache: PlanCache::with_cap(opts.plan_cache_cap),
            shared_cache: opts.shared_plan_cache,
            backend_fp,
            mediator,
        }
    }

    fn med(&self) -> &Mediator {
        self.mediator.get()
    }

    /// The shared evaluation context (stats, source views).
    pub fn ctx(&self) -> &Arc<EvalContext> {
        &self.ctx
    }

    /// Metadata about a result (plans + rewrite trace).
    pub fn result_info(&self, p: QNode) -> &ResultInfo {
        &self.results[p.result]
    }

    // ---- the command surface --------------------------------------------

    /// Execute one [`Command`] — the *single* entry point to the
    /// session. The named methods (`query`, `d`, `r`, `fl`, `fv`, …)
    /// are thin wrappers that build a `Command` and unwrap the
    /// [`Reply`], so a wire client and an in-process caller
    /// demonstrably exercise one API.
    ///
    /// Commands never panic on bad input: a stale or out-of-range
    /// handle answers [`Reply::Err`]`(MixError::Plan)` and the session
    /// stays usable.
    pub fn dispatch(&mut self, cmd: Command) -> Reply {
        self.try_dispatch(cmd).unwrap_or_else(Reply::Err)
    }

    fn try_dispatch(&mut self, cmd: Command) -> Result<Reply> {
        Ok(match cmd {
            Command::Query { text } => Reply::Node(wire(self.query_impl(&text)?)),
            Command::Q { text, from } => {
                let from = self.resolve(from)?;
                Reply::Node(wire(self.q_impl(&text, from)?))
            }
            Command::D { p } => Reply::Step(self.d_impl(self.resolve(p)?)?.map(wire)),
            Command::R { p } => Reply::Step(self.r_impl(self.resolve(p)?)?.map(wire)),
            Command::Fl { p } => Reply::Label(self.fl_impl(self.resolve(p)?)?),
            Command::Fv { p } => Reply::Value(self.fv_impl(self.resolve(p)?)?),
            Command::Children { p } => Reply::Nodes(
                self.children_impl(self.resolve(p)?)?
                    .into_iter()
                    .map(wire)
                    .collect(),
            ),
            Command::ChildCount { p } => {
                Reply::Count(self.child_count_impl(self.resolve(p)?)? as u64)
            }
            Command::Render { p } => Reply::Text(self.render_impl(self.resolve(p)?)),
            Command::Explain { p } => Reply::Text(self.explain_impl(self.resolve(p)?)),
            Command::Export { p, max_rows } => {
                Reply::Block(self.export_impl(self.resolve(p)?, max_rows)?)
            }
            Command::Stats => Reply::Stats(self.stats_impl()),
        })
    }

    /// The wire handle for an in-process node — the same value
    /// [`Reply::Node`]/[`Reply::Step`] carry, for callers mixing the
    /// named surface with [`QdomSession::dispatch`].
    pub fn handle(&self, p: QNode) -> WireNode {
        wire(p)
    }

    /// Validate a wire handle into a [`QNode`] (for the non-protocol
    /// helpers: [`QdomSession::oid`], [`QdomSession::result_info`],
    /// …). Stale or out-of-range handles answer `MixError::Plan`.
    pub fn resolve_handle(&self, w: WireNode) -> Result<QNode> {
        self.resolve(w)
    }

    /// Validate an arriving wire handle. Both halves are checked: the
    /// result index against the results this session has produced, and
    /// the node id against that result's materialization bound — lazy
    /// results only ever hand out ids they have materialized, so
    /// anything past the bound was never a handle the client received.
    fn resolve(&self, w: WireNode) -> Result<QNode> {
        let result = w.result as usize;
        let info = self.results.get(result).ok_or_else(|| {
            MixError::plan(format!(
                "stale result handle: result {} of a session with {} result(s)",
                w.result,
                self.results.len()
            ))
        })?;
        let bound = info.doc.node_bound();
        if w.node as usize >= bound {
            return Err(MixError::plan(format!(
                "stale node handle: node {} is outside result {result} (bound {bound})",
                w.node
            )));
        }
        Ok(QNode {
            result,
            node: NodeRef(w.node),
        })
    }

    // ---- queries ------------------------------------------------------

    /// Issue a query against the mediator's sources and views; returns
    /// the root of the (virtual) answer document. Wrapper over
    /// [`Command::Query`].
    pub fn query(&mut self, text: &str) -> Result<QNode> {
        match self.dispatch(Command::Query { text: text.into() }) {
            Reply::Node(w) => Ok(unwire(w)),
            other => Err(reply_err(other, "query")),
        }
    }

    fn query_impl(&mut self, text: &str) -> Result<QNode> {
        let _span = self.ctx.tracer.span("cmd:query", &[]);
        let q = parse_query(text)?;
        let result_name = format!("rootv{}", self.results.len());
        let mut plan = translate_with_root(&q, &result_name)?;
        // Compose away references to defined views.
        for vname in self.med().view_names() {
            if references_source(&plan.root, vname.as_str()) {
                let view = self.med().view(vname.as_str()).expect("listed view exists");
                plan = compose(&plan, vname.as_str(), view);
            }
        }
        if references_source(&plan.root, QUERY_ROOT) {
            return Err(MixError::invalid(
                "document(root) is only meaningful in a query-in-place; use q(query, node)",
            ));
        }
        self.execute(plan)
    }

    /// `q(query, p)`: issue a query *from node `p`* (Section 2). From a
    /// result root this is composition (Section 6); from an interior
    /// node it is decontextualization (Section 5). Inside the query,
    /// `document(root)` denotes `p`. Wrapper over [`Command::Q`].
    pub fn q(&mut self, text: &str, p: QNode) -> Result<QNode> {
        match self.dispatch(Command::Q {
            text: text.into(),
            from: wire(p),
        }) {
            Reply::Node(w) => Ok(unwire(w)),
            other => Err(reply_err(other, "q")),
        }
    }

    fn q_impl(&mut self, text: &str, p: QNode) -> Result<QNode> {
        let _span = self.ctx.tracer.span("cmd:q", &[]);
        let q = parse_query(text)?;
        let result_name = format!("rootv{}", self.results.len());
        let qplan = translate_with_root(&q, &result_name)?;
        let entry = &self.results[p.result];
        if p.node == entry.doc.nav().root() {
            // Composition with the producing plan.
            let plan = compose(&qplan, QUERY_ROOT, &entry.logical_plan);
            return self.execute(plan);
        }
        // Decontextualization from the node's id. Sibling nodes share a
        // plan shape differing only in key constants, so try the plan
        // cache before running the translate → splice → rewrite
        // pipeline.
        let nctx = self.context(p);
        let cache_key = CacheKey::new(
            text,
            p.result,
            &nctx,
            self.ctx.hash_joins,
            self.ctx.block,
            self.ctx.prefetch,
            self.ctx.columnar,
            self.backend_fp,
        );
        if let Some((key, new_slots)) = &cache_key {
            // The shared (cross-session) cache, when installed,
            // replaces the private one entirely — one tier fields every
            // lookup, so a session's hit/miss counters mean the same
            // thing either way.
            let hit = match &self.shared_cache {
                Some(shared) => shared.lookup(key, new_slots, &result_name),
                None => self.plan_cache.lookup(key, new_slots, &result_name),
            };
            if let Some((exec, logical, naive, trace)) = hit {
                self.ctx.stats().inc(Counter::PlanCacheHits);
                return self.push_result(exec, logical, naive, trace);
            }
            self.ctx.stats().inc(Counter::PlanCacheMisses);
        }
        let entry = &self.results[p.result];
        let plan = decontextualize(&qplan, &nctx, &entry.logical_plan)?;
        let naive = plan.clone();
        let (exec, logical, trace) = if self.med().options().optimize {
            let out = optimize(&plan, self.med().catalog());
            (out.plan, rewrite(&plan).plan, out.trace)
        } else {
            (plan.clone(), plan, RewriteTrace::default())
        };
        if let Some((key, slots)) = cache_key {
            let view = &self.results[p.result].logical_plan;
            match &self.shared_cache {
                Some(shared) => {
                    shared.insert(key, slots, &exec, &logical, &naive, &trace, &qplan, view)
                }
                None => self
                    .plan_cache
                    .insert(key, slots, &exec, &logical, &naive, &trace, &qplan, view),
            }
        }
        self.push_result(exec, logical, naive, trace)
    }

    /// The materialize-then-query strawman for queries-in-place: copy
    /// the full subtree under `p` to the mediator, register it as the
    /// query root, and evaluate against the copy. This is the baseline
    /// experiment E3 compares decontextualization against.
    pub fn q_materialized(&mut self, text: &str, p: QNode) -> Result<QNode> {
        let _span = self.ctx.tracer.span("cmd:q", &[]);
        let q = parse_query(text)?;
        let result_name = format!("rootv{}", self.results.len());
        let plan = translate_with_root(&q, &result_name)?;
        // Materialize the subtree under p as the `root` document.
        let entry = &self.results[p.result];
        let nav = entry.doc.nav();
        let label = nav.try_label(p.node)?.unwrap_or_else(|| Name::new("list"));
        let mut doc = Document::new(QUERY_ROOT, label);
        let root = doc.root_ref();
        copy_subtree_children(nav, p.node, &mut doc, root, &self.ctx)?;
        self.ctx.register_doc(Arc::new(doc));
        // No composition: the plan's mksrc(root) now resolves to the
        // materialized copy.
        self.execute_unoptimized(plan)
    }

    fn execute(&mut self, plan: Plan) -> Result<QNode> {
        if self.med().options().optimize {
            let out = optimize(&plan, self.med().catalog());
            // The logical plan for later composition is the rewritten,
            // pre-split plan.
            let logical = rewrite(&plan).plan;
            let naive = plan;
            self.push_result(out.plan, logical, naive, out.trace)
        } else {
            self.execute_unoptimized(plan)
        }
    }

    fn execute_unoptimized(&mut self, plan: Plan) -> Result<QNode> {
        let logical = plan.clone();
        let naive = plan.clone();
        self.push_result(plan, logical, naive, RewriteTrace::default())
    }

    fn push_result(
        &mut self,
        exec_plan: Plan,
        logical_plan: Plan,
        naive_plan: Plan,
        trace: RewriteTrace,
    ) -> Result<QNode> {
        mix_algebra::validate(&exec_plan)?;
        let (doc, profile) = match self.ctx.mode() {
            AccessMode::Lazy => {
                let v = Arc::new(VirtualResult::new(&exec_plan, Arc::clone(&self.ctx))?);
                let profile = Arc::clone(v.profile());
                (ResultDoc::Lazy(v), profile)
            }
            AccessMode::Eager => {
                let profile = Arc::new(ExecProfile::new());
                let d = eager::evaluate_profiled(&exec_plan, &self.ctx, Some(&profile))?;
                (ResultDoc::Eager(Arc::new(d)), profile)
            }
        };
        // Handing the (virtual) result root to the client is the
        // protocol's implicit getRoot — a navigation command like d/r.
        self.ctx.stats().inc(Counter::NavCommands);
        let root = doc.nav().root();
        self.results.push(ResultInfo {
            exec_plan,
            logical_plan,
            naive_plan,
            trace,
            profile,
            doc,
        });
        Ok(QNode {
            result: self.results.len() - 1,
            node: root,
        })
    }

    // ---- navigation (Section 2's command set) --------------------------

    /// `d(p)`: the first child, or `Ok(None)` for a leaf. In a lazy
    /// session this is the command that pulls from the sources, so a
    /// backend failure that retries could not fix surfaces *here* as
    /// [`MixError::Backend`] — already-materialized siblings stay
    /// readable. Wrapper over [`Command::D`].
    pub fn d(&mut self, p: QNode) -> Result<Option<QNode>> {
        match self.dispatch(Command::D { p: wire(p) }) {
            Reply::Step(n) => Ok(n.map(unwire)),
            other => Err(reply_err(other, "d")),
        }
    }

    fn d_impl(&self, p: QNode) -> Result<Option<QNode>> {
        let _span = self.ctx.tracer.span("cmd:d", &[]);
        Ok(self.results[p.result]
            .doc
            .nav()
            .try_first_child(p.node)?
            .map(|n| QNode {
                result: p.result,
                node: n,
            }))
    }

    /// `r(p)`: the right sibling, or `Ok(None)`. Fallible for the same
    /// reason as [`QdomSession::d`]. Wrapper over [`Command::R`].
    pub fn r(&mut self, p: QNode) -> Result<Option<QNode>> {
        match self.dispatch(Command::R { p: wire(p) }) {
            Reply::Step(n) => Ok(n.map(unwire)),
            other => Err(reply_err(other, "r")),
        }
    }

    fn r_impl(&self, p: QNode) -> Result<Option<QNode>> {
        let _span = self.ctx.tracer.span("cmd:r", &[]);
        Ok(self.results[p.result]
            .doc
            .nav()
            .try_next_sibling(p.node)?
            .map(|n| QNode {
                result: p.result,
                node: n,
            }))
    }

    /// `fl(p)`: the element label (`Ok(None)` for a text leaf).
    /// Wrapper over [`Command::Fl`].
    pub fn fl(&mut self, p: QNode) -> Result<Option<Name>> {
        match self.dispatch(Command::Fl { p: wire(p) }) {
            Reply::Label(l) => Ok(l),
            other => Err(reply_err(other, "fl")),
        }
    }

    fn fl_impl(&self, p: QNode) -> Result<Option<Name>> {
        let _span = self.ctx.tracer.span("cmd:fl", &[]);
        self.results[p.result].doc.nav().try_label(p.node)
    }

    /// `fv(p)`: the leaf value (`Ok(None)` for an element). Wrapper
    /// over [`Command::Fv`].
    pub fn fv(&mut self, p: QNode) -> Result<Option<Value>> {
        match self.dispatch(Command::Fv { p: wire(p) }) {
            Reply::Value(v) => Ok(v),
            other => Err(reply_err(other, "fv")),
        }
    }

    fn fv_impl(&self, p: QNode) -> Result<Option<Value>> {
        let _span = self.ctx.tracer.span("cmd:fv", &[]);
        self.results[p.result].doc.nav().try_value(p.node)
    }

    /// The node's vertex id.
    pub fn oid(&self, p: QNode) -> Oid {
        self.results[p.result].doc.nav().oid(p.node)
    }

    /// The decontextualization payload of a node.
    pub fn context(&self, p: QNode) -> NodeContext {
        match &self.results[p.result].doc {
            ResultDoc::Lazy(v) => v.context(p.node),
            ResultDoc::Eager(d) => {
                let mut ancestors = Vec::new();
                let mut cur = d.parent(p.node);
                while let Some(a) = cur {
                    if a == d.root_ref() {
                        break;
                    }
                    ancestors.push(d.oid(a));
                    cur = d.parent(a);
                }
                NodeContext {
                    oid: d.oid(p.node),
                    ancestors,
                }
            }
        }
    }

    /// Export a query result as a navigable source for *another*
    /// mediator ("a MIX mediator can be such a source to another MIX
    /// mediator", Section 4), renamed to `name`. Navigation commands
    /// the upper mediator issues propagate into this (lazy) result.
    pub fn export_result(&self, p: QNode, name: &str) -> Arc<dyn NavDoc> {
        let inner: Arc<dyn NavDoc> = match &self.results[p.result].doc {
            ResultDoc::Lazy(v) => Arc::clone(v) as Arc<dyn NavDoc>,
            ResultDoc::Eager(d) => Arc::clone(d) as Arc<dyn NavDoc>,
        };
        Arc::new(mix_xml::RenamedDoc::new(inner, name))
    }

    /// Render the subtree under `p` (paper-figure tree style). Forces
    /// the subtree — a debugging/verification helper, not part of the
    /// QDOM protocol. Wrapper over [`Command::Render`]; panics on a
    /// stale handle (in-process callers only hold handles this session
    /// minted).
    pub fn render(&mut self, p: QNode) -> String {
        match self.dispatch(Command::Render { p: wire(p) }) {
            Reply::Text(t) => t,
            other => panic!("{}", reply_err(other, "render")),
        }
    }

    fn render_impl(&self, p: QNode) -> String {
        mix_xml::print::render_tree(self.results[p.result].doc.nav(), p.node)
    }

    /// EXPLAIN (ANALYZE) for the query that produced `p`'s result: the
    /// naive logical plan, the optimized (pre-SQL-split) plan, and the
    /// executed physical plan annotated with what each operator has
    /// actually done so far — pulls, tuples, kernel choices, pushed
    /// SQL. In a lazy session the counts grow as navigation proceeds;
    /// un-demanded operators show `[never pulled]`. Wrapper over
    /// [`Command::Explain`]; panics on a stale handle.
    pub fn explain(&mut self, p: QNode) -> String {
        match self.dispatch(Command::Explain { p: wire(p) }) {
            Reply::Text(t) => t,
            other => panic!("{}", reply_err(other, "explain")),
        }
    }

    fn explain_impl(&self, p: QNode) -> String {
        let info = &self.results[p.result];
        format!(
            "== logical plan ==\n{}== optimized plan ==\n{}== physical plan ==\n{}",
            info.naive_plan.render(),
            info.logical_plan.render(),
            render_annotated(&info.exec_plan, &info.profile),
        )
    }

    /// Collect the children of `p` via `d`/`r` navigation (forces
    /// them). Wrapper over [`Command::Children`].
    pub fn children(&mut self, p: QNode) -> Result<Vec<QNode>> {
        match self.dispatch(Command::Children { p: wire(p) }) {
            Reply::Nodes(ns) => Ok(ns.into_iter().map(unwire).collect()),
            other => Err(reply_err(other, "children")),
        }
    }

    fn children_impl(&self, p: QNode) -> Result<Vec<QNode>> {
        let mut out = Vec::new();
        let mut cur = self.d_impl(p)?;
        while let Some(c) = cur {
            out.push(c);
            cur = self.r_impl(c)?;
        }
        Ok(out)
    }

    /// Count the children of `p` via `d`/`r` navigation. Wrapper over
    /// [`Command::ChildCount`].
    pub fn child_count(&mut self, p: QNode) -> Result<usize> {
        match self.dispatch(Command::ChildCount { p: wire(p) }) {
            Reply::Count(n) => Ok(n as usize),
            other => Err(reply_err(other, "child_count")),
        }
    }

    fn child_count_impl(&self, p: QNode) -> Result<usize> {
        let mut n = 0;
        let mut cur = self.d_impl(p)?;
        while let Some(c) = cur {
            n += 1;
            cur = self.r_impl(c)?;
        }
        Ok(n)
    }

    /// Bulk navigation: up to `max_rows` children of `p` (0 = no cap)
    /// as one columnar block of `(node, label, value)` rows, so a wire
    /// client walks a wide sibling list in one round trip instead of
    /// `3·n`. Wrapper over [`Command::Export`].
    pub fn export(&mut self, p: QNode, max_rows: u32) -> Result<ColumnBlock> {
        match self.dispatch(Command::Export {
            p: wire(p),
            max_rows,
        }) {
            Reply::Block(b) => Ok(b),
            other => Err(reply_err(other, "export")),
        }
    }

    fn export_impl(&self, p: QNode, max_rows: u32) -> Result<ColumnBlock> {
        let _span = self.ctx.tracer.span("cmd:export", &[]);
        let nav = self.results[p.result].doc.nav();
        let mut block = ColumnBlock::new(3);
        let mut cur = nav.try_first_child(p.node)?;
        while let Some(c) = cur {
            if max_rows != 0 && block.len() >= max_rows as usize {
                break;
            }
            let label = nav
                .try_label(c)?
                .map(|n| Value::str(n.as_str()))
                .unwrap_or(Value::Null);
            let value = nav.try_value(c)?.unwrap_or(Value::Null);
            block.push_row(vec![Value::Int(c.0 as i64), label, value]);
            cur = nav.try_next_sibling(c)?;
        }
        Ok(block)
    }

    /// Snapshot the session's work counters as `(label, value)` pairs.
    /// Wrapper over [`Command::Stats`].
    pub fn stats(&mut self) -> Vec<(String, u64)> {
        match self.dispatch(Command::Stats) {
            Reply::Stats(s) => s,
            other => panic!("{}", reply_err(other, "stats")),
        }
    }

    fn stats_impl(&self) -> Vec<(String, u64)> {
        // Mediator-side counters plus the per-source backend counters
        // (shipped blocks/tuples, faults, retries), summed over the
        // catalog's databases — so a wire client observes the session's
        // whole data path, not just the mediator half. Source counters
        // are shared across clones of a `Database`: sessions whose
        // mediators share one catalog see combined source totals.
        let snap = self.ctx.stats().snapshot();
        let sources: Vec<_> = self
            .ctx
            .catalog()
            .databases()
            .map(|db| db.stats().snapshot())
            .collect();
        Counter::ALL
            .iter()
            .map(|&c| {
                let v = snap.get(c) + sources.iter().map(|s| s.get(c)).sum::<u64>();
                (c.label().to_string(), v)
            })
            .collect()
    }
}

fn copy_subtree_children(
    nav: &dyn NavDoc,
    from: NodeRef,
    doc: &mut Document,
    to: NodeRef,
    ctx: &EvalContext,
) -> Result<()> {
    let mut cur = nav.try_first_child(from)?;
    while let Some(c) = cur {
        ctx.stats().inc(Counter::NodesBuilt);
        if let Some(v) = nav.try_value(c)? {
            doc.add_text_with_oid(to, v.clone(), Oid::lit(v));
        } else if let Some(label) = nav.try_label(c)? {
            let new = doc.add_elem_with_oid(to, label, nav.oid(c));
            copy_subtree_children(nav, c, doc, new, ctx)?;
        }
        cur = nav.try_next_sibling(c)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::MediatorOptions;
    use mix_wrapper::fig2_catalog;

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    fn mediator(optimize: bool, access: AccessMode) -> Mediator {
        let (cat, _) = fig2_catalog();
        Mediator::with_options(
            cat,
            MediatorOptions::builder()
                .access(access)
                .optimize(optimize)
                .build(),
        )
    }

    #[test]
    fn example_2_1_full_session() {
        // The paper's Example 2.1, end to end.
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        assert_eq!(s.fl(p1).unwrap().unwrap().as_str(), "CustRec");
        let p2 = s.r(p1).unwrap().unwrap();
        assert_eq!(s.fl(p2).unwrap().unwrap().as_str(), "CustRec");
        let p3 = s.d(p1).unwrap().unwrap();
        assert_eq!(s.fl(p3).unwrap().unwrap().as_str(), "customer");
        // p4 = q(Q2, p0): refine from the root (composition). The
        // paper's Q2 wants names starting with "A"; our Fig. 2 data has
        // DEFCorp./XYZInc., so filter below "E" to keep DEF345.
        let p4 = s
            .q(
                "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"E\" RETURN $P",
                p0,
            )
            .unwrap();
        let p5 = s.d(p4).unwrap().unwrap();
        assert_eq!(s.fl(p5).unwrap().unwrap().as_str(), "CustRec");
        assert!(s.render(p5).contains("DEFCorp."), "{}", s.render(p5));
        assert!(s.r(p5).unwrap().is_none()); // XYZInc. filtered out
                                             // p6..p8: navigate into customer and OrderInfo children.
        let p6 = s.d(p5).unwrap().unwrap();
        assert_eq!(s.fl(p6).unwrap().unwrap().as_str(), "customer");
        let p7 = s.r(p6).unwrap().unwrap();
        assert_eq!(s.fl(p7).unwrap().unwrap().as_str(), "OrderInfo");
        // p9 = q(Q3, p5): in-place query from the CustRec node
        // (decontextualization). DEF345's only order has value 500.
        let p9 = s
            .q(
                "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
                p5,
            )
            .unwrap();
        assert_eq!(s.child_count(p9).unwrap(), 1);
        let oi = s.d(p9).unwrap().unwrap();
        assert_eq!(s.fl(oi).unwrap().unwrap().as_str(), "OrderInfo");
        assert!(s.render(oi).contains("value = 500"), "{}", s.render(oi));
    }

    #[test]
    fn q2_exact_paper_constant_yields_empty() {
        // The literal Q2 (`name < "B"`) matches nothing in Fig. 2.
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p4 = s
            .q(
                "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"B\" RETURN $P",
                p0,
            )
            .unwrap();
        assert!(s.d(p4).unwrap().is_none());
    }

    #[test]
    fn decontextualized_query_pushes_key_predicate_to_sql() {
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap(); // CustRec for DEF345 (key order)
        assert_eq!(s.oid(p1).to_string(), "&($V,f(&DEF345))");
        let p9 = s
            .q(
                "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
                p1,
            )
            .unwrap();
        let info = s.result_info(p9);
        let text = info.exec_plan.render();
        assert!(text.contains("'DEF345'"), "{text}");
        assert!(text.contains("rQ("), "{text}");
        assert_eq!(s.child_count(p9).unwrap(), 1);
    }

    #[test]
    fn lazy_and_eager_sessions_agree() {
        for optimize in [false, true] {
            let ml = mediator(optimize, AccessMode::Lazy);
            let me = mediator(optimize, AccessMode::Eager);
            let mut sl = ml.session();
            let mut se = me.session();
            let pl = sl.query(Q1).unwrap();
            let pe = se.query(Q1).unwrap();
            assert_eq!(sl.render(pl), se.render(pe), "optimize={optimize}");
        }
    }

    #[test]
    fn optimized_and_naive_results_agree() {
        let mo = mediator(true, AccessMode::Lazy);
        let mn = mediator(false, AccessMode::Lazy);
        let mut so = mo.session();
        let mut sn = mn.session();
        let po = so.query(Q1).unwrap();
        let pn = sn.query(Q1).unwrap();
        assert_eq!(so.render(po), sn.render(pn));
        // And for the composed query.
        let q2 = "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"E\" RETURN $P";
        let po2 = so.q(q2, po).unwrap();
        let pn2 = sn.q(q2, pn).unwrap();
        assert_eq!(so.render(po2), sn.render(pn2));
    }

    #[test]
    fn views_compose_by_name() {
        let (cat, _) = fig2_catalog();
        let mut m = Mediator::new(cat);
        m.define_view("custorders", Q1).unwrap();
        let mut s = m.session();
        let p = s
            .query(
                "FOR $R IN document(custorders)/CustRec $S IN $R/OrderInfo \
                 WHERE $S/order/value > 20000 RETURN $R",
            )
            .unwrap();
        // Only XYZ123 has an order above 20000.
        assert_eq!(s.child_count(p).unwrap(), 1);
        let rec = s.d(p).unwrap().unwrap();
        assert!(s.render(rec).contains("XYZInc."), "{}", s.render(rec));
        // The optimized plan pushed a single SQL self-join.
        let text = s.result_info(p).exec_plan.render();
        assert_eq!(text.matches("rQ(").count(), 1, "{text}");
        assert!(text.contains("SELECT DISTINCT"), "{text}");
    }

    /// Strip oids (identity) from a tree rendering, keeping structure
    /// and content — plan transformations may rename skolem variable
    /// tags without changing the result's content.
    fn content_only(rendered: &str) -> String {
        rendered
            .lines()
            .map(|l| {
                let trimmed = l.trim_start();
                let indent = &l[..l.len() - trimmed.len()];
                let rest = match trimmed.strip_prefix('&') {
                    Some(r) => r.split_once(' ').map(|(_, rest)| rest).unwrap_or(""),
                    None => trimmed,
                };
                format!("{indent}{rest}")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn q_materialized_baseline_agrees_with_decontext() {
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        let q3 = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O";
        let a = s.q(q3, p1).unwrap();
        let b = s.q_materialized(q3, p1).unwrap();
        assert_eq!(content_only(&s.render(a)), content_only(&s.render(b)));
    }

    #[test]
    fn plan_cache_reuses_sibling_plans() {
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap(); // CustRec for DEF345
        let p2 = s.r(p1).unwrap().unwrap(); // CustRec for XYZ123
        let q3 = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 100 RETURN $O";
        let a = s.q(q3, p1).unwrap();
        assert_eq!(s.ctx().stats().get(Counter::PlanCacheMisses), 1);
        assert_eq!(s.ctx().stats().get(Counter::PlanCacheHits), 0);
        let b = s.q(q3, p2).unwrap();
        assert_eq!(s.ctx().stats().get(Counter::PlanCacheHits), 1);
        // The instantiated plan carries the sibling's key, not the
        // template's.
        let text = s.result_info(b).exec_plan.render();
        assert!(text.contains("'XYZ123'"), "{text}");
        assert!(!text.contains("'DEF345'"), "{text}");
        // DEF345 has one order over 100 (500); XYZ123 has two.
        assert_eq!(s.child_count(a).unwrap(), 1);
        assert_eq!(s.child_count(b).unwrap(), 2);
        // The cached instantiation matches what a cold session computes.
        let m2 = mediator(true, AccessMode::Lazy);
        let mut s2 = m2.session();
        let c0 = s2.query(Q1).unwrap();
        let c1 = s2.d(c0).unwrap().unwrap();
        let c2 = s2.r(c1).unwrap().unwrap();
        let cold = s2.q(q3, c2).unwrap();
        assert_eq!(content_only(&s.render(b)), content_only(&s2.render(cold)));
    }

    #[test]
    fn plan_cache_hit_on_repeated_node() {
        // The same node twice: identity substitution, same answer.
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        let q3 = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O";
        let a = s.q(q3, p1).unwrap();
        let b = s.q(q3, p1).unwrap();
        assert_eq!(s.ctx().stats().get(Counter::PlanCacheHits), 1);
        assert_eq!(content_only(&s.render(a)), content_only(&s.render(b)));
    }

    #[test]
    fn plan_cache_cap_evicts_lru() {
        // With a one-entry private cache, a second query class evicts
        // the first: re-issuing the first class misses again.
        let (cat, _) = fig2_catalog();
        let opts = MediatorOptions::builder().plan_cache_cap(1).build();
        let m = Mediator::with_options(cat, opts);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        let qa = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O";
        let qb = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 100 RETURN $O";
        s.q(qa, p1).unwrap(); // miss, cached
        s.q(qb, p1).unwrap(); // miss, evicts qa's template
        s.q(qa, p1).unwrap(); // miss again — it was evicted
        assert_eq!(s.ctx().stats().get(Counter::PlanCacheMisses), 3);
        assert_eq!(s.ctx().stats().get(Counter::PlanCacheHits), 0);
        // A roomier cache turns the third issue into a hit.
        let (cat2, _) = fig2_catalog();
        let m2 = Mediator::with_options(cat2, MediatorOptions::builder().plan_cache_cap(2).build());
        let mut s2 = m2.session();
        let c0 = s2.query(Q1).unwrap();
        let c1 = s2.d(c0).unwrap().unwrap();
        s2.q(qa, c1).unwrap();
        s2.q(qb, c1).unwrap();
        s2.q(qa, c1).unwrap();
        assert_eq!(s2.ctx().stats().get(Counter::PlanCacheHits), 1);
    }

    #[test]
    fn shared_plan_cache_hits_across_sessions() {
        use crate::plancache::SharedPlanCache;
        let shared = Arc::new(SharedPlanCache::default());
        let (cat, _) = fig2_catalog();
        let opts = MediatorOptions::builder()
            .shared_plan_cache(Arc::clone(&shared))
            .build();
        let m = Mediator::with_options(cat, opts);
        let q3 = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O";
        // Session 1 compiles the template.
        let mut s1 = m.session();
        let p0 = s1.query(Q1).unwrap();
        let p1 = s1.d(p0).unwrap().unwrap();
        let a = s1.q(q3, p1).unwrap();
        assert_eq!(s1.ctx().stats().get(Counter::PlanCacheMisses), 1);
        // Session 2's *first* issue of the same query class hits the
        // template session 1 compiled, via a sibling node's keys.
        let mut s2 = m.session();
        let c0 = s2.query(Q1).unwrap();
        let c1 = s2.d(c0).unwrap().unwrap();
        let c2 = s2.r(c1).unwrap().unwrap();
        let b = s2.q(q3, c2).unwrap();
        assert_eq!(s2.ctx().stats().get(Counter::PlanCacheHits), 1);
        assert_eq!(s2.ctx().stats().get(Counter::PlanCacheMisses), 0);
        // The shared cache's own counters carry the cross-session rate.
        assert!(shared.stats().get(Counter::PlanCacheHits) >= 1);
        assert!(!shared.is_empty());
        // And the instantiation is correct: same answers a cold,
        // uncached session computes.
        let mc = mediator(true, AccessMode::Lazy);
        let mut sc = mc.session();
        let d0 = sc.query(Q1).unwrap();
        let d1 = sc.d(d0).unwrap().unwrap();
        let d2 = sc.r(d1).unwrap().unwrap();
        let cold_a = sc.q(q3, d1).unwrap();
        let cold_b = sc.q(q3, d2).unwrap();
        assert_eq!(
            content_only(&s1.render(a)),
            content_only(&sc.render(cold_a))
        );
        assert_eq!(
            content_only(&s2.render(b)),
            content_only(&sc.render(cold_b))
        );
    }

    #[test]
    fn plan_cache_guard_refuses_key_constant_in_query() {
        // The query's own WHERE clause mentions DEF345 — the template's
        // slot marker would be ambiguous, so the plan must not be
        // cached, and the sibling query must recompute (a substituting
        // cache would wrongly rewrite the user's constant to XYZ123).
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap(); // DEF345
        let p2 = s.r(p1).unwrap().unwrap(); // XYZ123
        let q = "FOR $O IN document(root)/OrderInfo \
                 WHERE $O/order/cid/data() = \"DEF345\" RETURN $O";
        let a = s.q(q, p1).unwrap();
        assert_eq!(s.child_count(a).unwrap(), 1); // DEF345's own order
        let b = s.q(q, p2).unwrap();
        assert_eq!(s.ctx().stats().get(Counter::PlanCacheHits), 0);
        assert_eq!(s.ctx().stats().get(Counter::PlanCacheMisses), 2);
        // XYZ123's orders have cid XYZ123, so the filter keeps nothing.
        assert_eq!(s.child_count(b).unwrap(), 0);
    }

    #[test]
    fn plan_cache_works_unoptimized_and_eager() {
        for (optimize, access) in [
            (false, AccessMode::Lazy),
            (true, AccessMode::Eager),
            (false, AccessMode::Eager),
        ] {
            let m = mediator(optimize, access);
            let mut s = m.session();
            let p0 = s.query(Q1).unwrap();
            let p1 = s.d(p0).unwrap().unwrap();
            let p2 = s.r(p1).unwrap().unwrap();
            let q3 = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 100 RETURN $O";
            let a = s.q(q3, p1).unwrap();
            let b = s.q(q3, p2).unwrap();
            assert_eq!(
                s.ctx().stats().get(Counter::PlanCacheHits),
                1,
                "optimize={optimize}"
            );
            assert_eq!(
                s.child_count(a).unwrap(),
                1,
                "optimize={optimize} access={access:?}"
            );
            assert_eq!(
                s.child_count(b).unwrap(),
                2,
                "optimize={optimize} access={access:?}"
            );
        }
    }

    #[test]
    fn fv_and_oid_commands() {
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s
            .query("FOR $C IN source(&root1)/customer RETURN $C")
            .unwrap();
        let cust = s.d(p0).unwrap().unwrap();
        assert_eq!(s.oid(cust).to_string(), "&DEF345");
        assert!(s.fv(cust).unwrap().is_none());
        let id_field = s.d(cust).unwrap().unwrap();
        let leaf = s.d(id_field).unwrap().unwrap();
        assert_eq!(s.fv(leaf).unwrap(), Some(Value::str("DEF345")));
        assert!(s.d(leaf).unwrap().is_none());
    }

    #[test]
    fn stale_handles_error_instead_of_panicking() {
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        // Before any query, every handle is stale.
        let bogus = WireNode { result: 0, node: 0 };
        for cmd in [
            Command::D { p: bogus },
            Command::R { p: bogus },
            Command::Fl { p: bogus },
            Command::Fv { p: bogus },
            Command::Children { p: bogus },
            Command::ChildCount { p: bogus },
            Command::Render { p: bogus },
            Command::Explain { p: bogus },
            Command::Export {
                p: bogus,
                max_rows: 0,
            },
            Command::Q {
                text: "FOR $X IN document(root)/a RETURN $X".into(),
                from: bogus,
            },
        ] {
            let name = cmd.name();
            match s.dispatch(cmd) {
                Reply::Err(MixError::Plan(_)) => {}
                other => panic!("{name} on a stale handle answered {other:?}"),
            }
        }
        let p0 = s.query(Q1).unwrap();
        // A node id past the materialization bound was never handed out.
        let forged_node = WireNode {
            result: 0,
            node: 999_999,
        };
        match s.dispatch(Command::Fl { p: forged_node }) {
            Reply::Err(MixError::Plan(msg)) => assert!(msg.contains("node"), "{msg}"),
            other => panic!("forged node answered {other:?}"),
        }
        // A result index the session never produced.
        let forged_result = WireNode { result: 7, node: 0 };
        match s.dispatch(Command::D { p: forged_result }) {
            Reply::Err(MixError::Plan(msg)) => assert!(msg.contains("result"), "{msg}"),
            other => panic!("forged result answered {other:?}"),
        }
        // The session stays fully usable after rejected commands.
        assert!(s.d(p0).unwrap().is_some());
        // The in-process named methods share the validation: a QNode
        // from a different session errors rather than panicking.
        let foreign = QNode {
            result: 9,
            node: NodeRef(0),
        };
        assert!(matches!(s.fl(foreign), Err(MixError::Plan(_))));
        assert!(matches!(
            s.q("FOR $X IN document(root)/a RETURN $X", foreign),
            Err(MixError::Plan(_))
        ));
    }

    #[test]
    fn export_ships_children_as_one_block() {
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s
            .query("FOR $C IN source(&root1)/customer RETURN $C")
            .unwrap();
        let cust = s.d(p0).unwrap().unwrap();
        // The fields of one customer: elements with labels, no values.
        let block = s.export(cust, 0).unwrap();
        let kids = s.children(cust).unwrap();
        assert_eq!(block.len(), kids.len());
        assert_eq!(block.arity(), 3);
        for (i, k) in kids.iter().enumerate() {
            assert_eq!(block.value_at(i, 0), Value::Int(k.node.0 as i64));
            let label = s.fl(*k).unwrap().map(|n| Value::str(n.as_str()));
            assert_eq!(block.value_at(i, 1), label.unwrap_or(Value::Null));
        }
        // The row cap applies.
        let capped = s.export(cust, 1).unwrap();
        assert_eq!(capped.len(), 1);
        // Leaves under a field carry values in column 2.
        let id_field = s.d(cust).unwrap().unwrap();
        let leaves = s.export(id_field, 0).unwrap();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves.value_at(0, 1), Value::Null); // text leaf: no label
        assert_eq!(leaves.value_at(0, 2), Value::str("DEF345"));
    }

    #[test]
    fn stats_command_snapshots_counters() {
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let _ = s.child_count(p0).unwrap();
        let stats = s.stats();
        assert_eq!(stats.len(), Counter::ALL.len());
        let get = |label: &str| {
            stats
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(get("nav_commands") >= 1, "{stats:?}");
        assert!(get("nodes_built") >= 1, "{stats:?}");
    }

    #[test]
    fn stray_document_root_is_rejected() {
        let m = mediator(true, AccessMode::Lazy);
        let mut s = m.session();
        assert!(s.query("FOR $X IN document(root)/a RETURN $X").is_err());
    }
}
