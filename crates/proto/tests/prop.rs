//! Round-trip property test: for randomly generated frames covering
//! every `Command`/`Reply` variant — including `ColumnBlock` payloads
//! and every `MixError` variant — `decode(encode(f)) == f` and the
//! encoding is canonical (`encode(decode(bytes)) == bytes`).
//!
//! The workspace has no property-testing dependency, so this uses the
//! same seeded-LCG idiom as mix-common's column tests: deterministic,
//! reproducible from the seed printed on failure.

use mix_common::{ColData, Column, ColumnBlock, FaultKind, MixError, Name, Value};
use mix_proto::{read_frame, Command, Frame, Reply, WireNode, PROTO_VERSION};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG; plenty for test-case shuffling.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn string(&mut self) -> String {
        let len = self.below(24) as usize;
        (0..len)
            .map(|_| {
                // Mix ASCII with a multibyte char so UTF-8 handling is hit.
                match self.below(12) {
                    0 => 'é',
                    1 => ' ',
                    n => (b'a' + (n as u8 - 2)) as char,
                }
            })
            .collect()
    }
    fn node(&mut self) -> WireNode {
        WireNode {
            result: self.below(100) as u32,
            node: self.below(10_000) as u32,
        }
    }
    fn value(&mut self) -> Value {
        match self.below(5) {
            0 => Value::Null,
            1 => Value::Bool(self.below(2) == 1),
            2 => Value::Int(self.next() as i64),
            3 => {
                // Include negative zero and big magnitudes; bits must survive.
                let f = match self.below(4) {
                    0 => -0.0,
                    1 => f64::MIN_POSITIVE,
                    _ => (self.next() as i64) as f64 / 7.0,
                };
                Value::Float(f)
            }
            _ => Value::str(self.string()),
        }
    }
    fn column(&mut self, rows: usize) -> Column {
        let data = match self.below(6) {
            0 => ColData::Null,
            1 => ColData::Int((0..rows).map(|_| self.next() as i64).collect()),
            2 => ColData::Float(
                (0..rows)
                    .map(|_| (self.next() as i64) as f64 / 3.0)
                    .collect(),
            ),
            3 => ColData::Bool((0..rows).map(|_| self.below(2) == 1).collect()),
            4 => ColData::Str((0..rows).map(|_| self.string().into()).collect()),
            _ => ColData::Mixed((0..rows).map(|_| self.value()).collect()),
        };
        // Null/Mixed never carry a mask (Mixed stores nulls in-band).
        let maskable = !matches!(data, ColData::Null | ColData::Mixed(_));
        let valid = if maskable && self.below(2) == 1 {
            Some((0..rows).map(|_| self.below(4) != 0).collect())
        } else {
            None
        };
        Column::from_parts(data, valid, rows).unwrap()
    }
    fn block(&mut self) -> ColumnBlock {
        let rows = self.below(12) as usize;
        let arity = self.below(5) as usize;
        ColumnBlock::from_columns((0..arity).map(|_| self.column(rows)).collect(), rows)
    }
    fn error(&mut self) -> MixError {
        let whats = ["sql", "xml", "xquery", "table", "column", "source"];
        match self.below(8) {
            0 => MixError::parse(
                whats[self.below(3) as usize],
                self.below(1000) as usize,
                self.string(),
            ),
            1 => MixError::unknown(whats[3 + self.below(3) as usize], self.string()),
            2 => MixError::invalid(self.string()),
            3 => MixError::Navigation(self.string()),
            4 => MixError::internal(self.string()),
            5 => MixError::source(Name::new(self.string()), self.string()),
            6 => {
                let kind = if self.below(2) == 0 {
                    FaultKind::Transient
                } else {
                    FaultKind::Permanent
                };
                match MixError::backend(Name::new(self.string()), kind, self.string()) {
                    MixError::Backend(mut b) => {
                        b.retries = self.below(5) as u32;
                        MixError::Backend(b)
                    }
                    other => other,
                }
            }
            _ => MixError::plan(self.string()),
        }
    }
    fn command(&mut self) -> Command {
        match self.below(12) {
            0 => Command::Query {
                text: self.string(),
            },
            1 => Command::Q {
                text: self.string(),
                from: self.node(),
            },
            2 => Command::D { p: self.node() },
            3 => Command::R { p: self.node() },
            4 => Command::Fl { p: self.node() },
            5 => Command::Fv { p: self.node() },
            6 => Command::Children { p: self.node() },
            7 => Command::ChildCount { p: self.node() },
            8 => Command::Render { p: self.node() },
            9 => Command::Explain { p: self.node() },
            10 => Command::Export {
                p: self.node(),
                max_rows: self.below(1 << 20) as u32,
            },
            _ => Command::Stats,
        }
    }
    fn reply(&mut self) -> Reply {
        match self.below(10) {
            0 => Reply::Node(self.node()),
            1 => Reply::Step(if self.below(2) == 0 {
                None
            } else {
                Some(self.node())
            }),
            2 => Reply::Label(if self.below(2) == 0 {
                None
            } else {
                Some(Name::new(self.string()))
            }),
            3 => Reply::Value(if self.below(2) == 0 {
                None
            } else {
                Some(self.value())
            }),
            4 => {
                let n = self.below(20) as usize;
                Reply::Nodes((0..n).map(|_| self.node()).collect())
            }
            5 => Reply::Count(self.next()),
            6 => Reply::Text(self.string()),
            7 => Reply::Block(self.block()),
            8 => {
                let n = self.below(10) as usize;
                Reply::Stats((0..n).map(|_| (self.string(), self.next())).collect())
            }
            _ => Reply::Err(self.error()),
        }
    }
    fn frame(&mut self) -> Frame {
        match self.below(6) {
            0 => Frame::Hello {
                version: PROTO_VERSION,
            },
            1 => Frame::Welcome {
                version: PROTO_VERSION,
                session: self.next(),
            },
            2 => Frame::Reject {
                reason: self.string(),
            },
            3 => Frame::Cmd(self.command()),
            4 => Frame::Rep(self.reply()),
            _ => Frame::Bye,
        }
    }
}

#[test]
fn any_frame_survives_the_wire_bit_identically() {
    for seed in 1..=400u64 {
        let mut rng = Lcg(seed);
        let frame = rng.frame();
        let bytes = frame.encode();
        let (back, consumed) = read_frame(&mut &bytes[..])
            .unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e} ({frame:?})"))
            .expect("non-empty stream");
        assert_eq!(back, frame, "seed {seed}: value round trip");
        assert_eq!(
            consumed,
            bytes.len(),
            "seed {seed}: frame length accounting"
        );
        assert_eq!(back.encode(), bytes, "seed {seed}: canonical re-encode");
    }
}

#[test]
fn frame_streams_survive_concatenation() {
    // Frames are self-delimiting: a stream of many decodes back one by
    // one with no separator, exactly as a socket delivers them.
    let mut rng = Lcg(0xC0FFEE);
    let frames: Vec<Frame> = (0..64).map(|_| rng.frame()).collect();
    let mut stream = Vec::new();
    for f in &frames {
        stream.extend_from_slice(&f.encode());
    }
    let mut cursor = &stream[..];
    let mut back = Vec::new();
    while let Some((f, _)) = read_frame(&mut cursor).unwrap() {
        back.push(f);
    }
    assert_eq!(back, frames);
}

/// Adversarial decoder fuzz: every truncation of every generated frame
/// and a dense sweep of single-byte corruptions must come back as a
/// clean `DecodeError` — never a panic, never a runaway allocation.
/// Mutants that still decode must satisfy decode∘encode∘decode
/// idempotence (re-encoding may legalize, e.g. an unknown error
/// category collapses to `"input"`, but it must then be a fixpoint).
#[test]
fn corrupted_frames_error_cleanly_never_panic() {
    for seed in 1..=60u64 {
        let mut rng = Lcg(seed ^ 0xDEC0DE);
        let frame = rng.frame();
        let bytes = frame.encode();
        let payload = &bytes[4..];

        // Every truncation point: must error (only the full payload is
        // a valid frame, thanks to the trailing-bytes check).
        for cut in 0..payload.len() {
            assert!(
                Frame::decode_payload(&payload[..cut]).is_err(),
                "seed {seed}: truncation at {cut} decoded"
            );
        }

        // Single-byte corruption, all 255 wrong values at a rotating
        // position plus every position with a bit flip.
        let check = |mutant: &[u8]| {
            if let Ok(decoded) = Frame::decode_payload(mutant) {
                let re = decoded.try_encode().expect("re-encode of decoded mutant");
                let again = Frame::decode_payload(&re[4..]).expect("re-encoded mutant must decode");
                assert_eq!(again, decoded, "seed {seed}: decode∘encode not idempotent");
            }
        };
        let mut mutant = payload.to_vec();
        for pos in 0..mutant.len() {
            for bit in 0..8 {
                mutant[pos] ^= 1 << bit;
                check(&mutant);
                mutant[pos] ^= 1 << bit;
            }
        }
        let pos = (seed as usize * 7919) % payload.len().max(1);
        for v in 0..=255u8 {
            let orig = mutant[pos];
            mutant[pos] = v;
            check(&mutant);
            mutant[pos] = orig;
        }
    }
}

/// A hostile length field cannot force a large allocation: a tiny
/// frame claiming millions of block rows (or huge counts) must fail
/// fast on the payload bound, before reserving element storage.
#[test]
fn hostile_counts_fail_before_allocating() {
    // Hand-built payload: version, Rep tag, Block reply tag, then a
    // block header claiming 16M rows × 1 Int column with 3 bytes left.
    let mut payload = vec![PROTO_VERSION, 4, 7];
    payload.extend_from_slice(&(16_000_000u32).to_le_bytes()); // rows
    payload.extend_from_slice(&1u32.to_le_bytes()); // arity
    payload.push(1); // ColData::Int tag
    payload.extend_from_slice(&[0, 0]); // not enough for one i64
    let err = Frame::decode_payload(&payload).unwrap_err();
    assert!(err.msg.contains("truncated"), "{err}");

    // Nodes reply claiming u32::MAX entries in an 8-byte payload.
    let mut payload = vec![PROTO_VERSION, 4, 4];
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    payload.extend_from_slice(&[0; 4]);
    let err = Frame::decode_payload(&payload).unwrap_err();
    assert!(err.msg.contains("count"), "{err}");

    // A block wider than the frame bound is rejected up front.
    let mut payload = vec![PROTO_VERSION, 4, 7];
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // rows
    payload.extend_from_slice(&0u32.to_le_bytes()); // arity
    let err = Frame::decode_payload(&payload).unwrap_err();
    assert!(err.msg.contains("exceeds frame bound"), "{err}");
}
