//! The MIX wire protocol: framed QDOM commands and replies.
//!
//! The paper's client/mediator split has the QDOM command set
//! (`d`/`r`/`fl`/`fv`/`q`) travel between a thin navigation client and
//! the mediator. This crate gives that boundary a concrete shape so the
//! same session surface works in-process and over a socket:
//!
//! * [`Command`] / [`Reply`] — the typed session surface. Node handles
//!   are [`WireNode`]s (the paper's `p₀, p₁, …`): a result index plus a
//!   node id within it, exactly what the in-process `QNode` carries.
//! * [`Frame`] — the connection-level envelope: handshake
//!   ([`Frame::Hello`] / [`Frame::Welcome`] / [`Frame::Reject`]),
//!   command/reply carriage, and the clean-close [`Frame::Bye`].
//! * The codec — a compact length-prefixed binary layout:
//!
//!   ```text
//!   frame   := len:u32le  version:u8  tag:u8  body
//!   body    := scalars (LE fixed width) | str (u32le len + UTF-8)
//!            | sequences (u32le count + elements)
//!   ```
//!
//!   Every frame carries the [`PROTO_VERSION`] byte; decoders reject
//!   mismatched versions and frames longer than [`MAX_FRAME_LEN`]
//!   before allocating. Block replies ship [`mix_common::ColumnBlock`]s in their
//!   native columnar layout (typed vectors + optional validity masks),
//!   so a bulk export costs one column-type tag per column, not one per
//!   cell.
//!
//! Encoding is canonical: `encode(decode(bytes)) == bytes` for every
//! valid frame, and `decode(encode(frame)) == frame` for every frame
//! (pinned by the round-trip property tests).

#![deny(missing_docs)]

mod codec;
mod message;

pub use codec::{read_frame, write_frame, DecodeError, MAX_FRAME_LEN};
pub use message::{Command, Frame, Reply, WireNode};

/// Version byte stamped on every frame. Bump on any layout change.
pub const PROTO_VERSION: u8 = 1;
