//! The typed session surface: commands, replies, frames.

use mix_common::{ColumnBlock, MixError, Name, Value};

/// A client-side node handle (the paper's `p₀, p₁, …`): the index of a
/// query result within the session plus a node id within that result.
/// Cheap to copy and meaningful only to the session that issued it —
/// the server validates both halves on every arriving command and
/// answers stale or out-of-range handles with `MixError::Plan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireNode {
    /// Which result of the session the node lives in (0-based, in
    /// query-issue order).
    pub result: u32,
    /// The node id within that result's (virtual) document arena.
    pub node: u32,
}

/// One QDOM session command. This is the *entire* session surface: the
/// in-process named methods (`session.d(p)`, `session.query(text)`, …)
/// are thin wrappers that build the same `Command` and unwrap the
/// [`Reply`], so wire clients and in-process callers demonstrably run
/// one API.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Issue a query against the mediator's sources and views; replies
    /// [`Reply::Node`] with the root of the (virtual) answer document.
    Query {
        /// XQuery text (the Fig. 4 subset).
        text: String,
    },
    /// `q(query, p)`: query *in place* from node `from` — composition
    /// from a result root, decontextualization from an interior node.
    Q {
        /// XQuery text; `document(root)` denotes `from`.
        text: String,
        /// The node the query is issued from.
        from: WireNode,
    },
    /// `d(p)`: first child. Replies [`Reply::Step`].
    D {
        /// The node to navigate from.
        p: WireNode,
    },
    /// `r(p)`: right sibling. Replies [`Reply::Step`].
    R {
        /// The node to navigate from.
        p: WireNode,
    },
    /// `fl(p)`: element label. Replies [`Reply::Label`].
    Fl {
        /// The node to inspect.
        p: WireNode,
    },
    /// `fv(p)`: leaf value. Replies [`Reply::Value`].
    Fv {
        /// The node to inspect.
        p: WireNode,
    },
    /// Collect the children of `p` (forces them). Replies
    /// [`Reply::Nodes`].
    Children {
        /// The parent node.
        p: WireNode,
    },
    /// Count the children of `p` (forces them). Replies
    /// [`Reply::Count`].
    ChildCount {
        /// The parent node.
        p: WireNode,
    },
    /// Render the subtree under `p` (paper-figure tree style; forces
    /// the subtree). Replies [`Reply::Text`].
    Render {
        /// The subtree root.
        p: WireNode,
    },
    /// EXPLAIN (ANALYZE) for the result containing `p`. Replies
    /// [`Reply::Text`].
    Explain {
        /// Any node of the result to explain.
        p: WireNode,
    },
    /// Bulk navigation: export up to `max_rows` children of `p` as one
    /// columnar block — `(handle, label, value)` per child — so a wire
    /// client walks a wide sibling list in one round trip instead of
    /// 3·n. Replies [`Reply::Block`].
    Export {
        /// The parent node.
        p: WireNode,
        /// Row cap (0 = no cap).
        max_rows: u32,
    },
    /// Snapshot the session's work counters (label → value). Replies
    /// [`Reply::Stats`]; the wire-vs-in-process equivalence suite pins
    /// its output against a local session's.
    Stats,
}

impl Command {
    /// Short command name for spans and logs (the paper's spelling for
    /// the navigation set).
    pub fn name(&self) -> &'static str {
        match self {
            Command::Query { .. } => "query",
            Command::Q { .. } => "q",
            Command::D { .. } => "d",
            Command::R { .. } => "r",
            Command::Fl { .. } => "fl",
            Command::Fv { .. } => "fv",
            Command::Children { .. } => "children",
            Command::ChildCount { .. } => "child_count",
            Command::Render { .. } => "render",
            Command::Explain { .. } => "explain",
            Command::Export { .. } => "export",
            Command::Stats => "stats",
        }
    }

    /// Does this command create a new result (and therefore consume
    /// session node budget up front)?
    pub fn creates_result(&self) -> bool {
        matches!(self, Command::Query { .. } | Command::Q { .. })
    }
}

/// The answer to one [`Command`]. Every command maps to exactly one
/// success variant (documented on the command) or [`Reply::Err`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A fresh result root (from `Query`/`Q`).
    Node(WireNode),
    /// A navigation step: the reached node, or `None` past the end
    /// (from `D`/`R`).
    Step(Option<WireNode>),
    /// An element label, `None` for a text leaf (from `Fl`).
    Label(Option<Name>),
    /// A leaf value, `None` for an element (from `Fv`).
    Value(Option<Value>),
    /// A node list (from `Children`).
    Nodes(Vec<WireNode>),
    /// A count (from `ChildCount`).
    Count(u64),
    /// Rendered text (from `Render`/`Explain`).
    Text(String),
    /// A columnar block of `(handle, label, value)` rows (from
    /// `Export`).
    Block(ColumnBlock),
    /// Counter labels and values (from `Stats`).
    Stats(Vec<(String, u64)>),
    /// The command failed; the session stays usable.
    Err(MixError),
}

impl Reply {
    /// Convert an error reply back into a `Result`, for clients that
    /// want `?`-style handling.
    pub fn into_result(self) -> Result<Reply, MixError> {
        match self {
            Reply::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }
}

/// A connection-level frame: the handshake, command/reply carriage,
/// and clean close.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame on the connection: the client's
    /// protocol version.
    Hello {
        /// The client's [`crate::PROTO_VERSION`].
        version: u8,
    },
    /// Server → client: handshake accepted; the session is live.
    Welcome {
        /// The server's protocol version.
        version: u8,
        /// Server-assigned session id (diagnostics / log correlation).
        session: u64,
    },
    /// Server → client: handshake refused (admission control or
    /// version mismatch). The server closes after sending this.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Client → server: one session command.
    Cmd(Command),
    /// Server → client: the answer to the previous command.
    Rep(Reply),
    /// Either direction: clean close (client done, or server idle
    /// timeout / graceful shutdown).
    Bye,
}
