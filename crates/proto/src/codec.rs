//! The binary codec: canonical encode/decode for every frame.
//!
//! All scalars are little-endian fixed width; strings and sequences are
//! `u32` count-prefixed. Floats travel as raw bit patterns
//! (`f64::to_bits`), so `-0.0`, `0.0` and any NaN payload survive
//! exactly. Booleans must be `0`/`1` on the wire — anything else is a
//! decode error — which together with the fixed layouts makes the
//! encoding *canonical*: re-encoding a decoded frame reproduces the
//! input bytes bit for bit.

use crate::message::{Command, Frame, Reply, WireNode};
use crate::PROTO_VERSION;
use mix_common::{BackendError, ColData, Column, ColumnBlock, FaultKind, MixError, Name, Value};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Upper bound on one frame's payload, checked before any allocation.
/// Large enough for any realistic block reply, small enough that a
/// corrupt length prefix cannot OOM the peer.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// A malformed frame: where in the payload decoding failed, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset within the frame payload.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for MixError {
    fn from(e: DecodeError) -> MixError {
        MixError::parse("wire", e.pos, e.msg)
    }
}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

// ---- encoding --------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn node(&mut self, n: WireNode) {
        self.u32(n.result);
        self.u32(n.node);
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.bool(*b);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(3);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
        }
    }
    fn block(&mut self, b: &ColumnBlock) {
        self.u32(b.len() as u32);
        self.u32(b.arity() as u32);
        for col in b.columns() {
            match col.data() {
                ColData::Null => self.u8(0),
                ColData::Int(xs) => {
                    self.u8(1);
                    for x in xs {
                        self.i64(*x);
                    }
                }
                ColData::Float(xs) => {
                    self.u8(2);
                    for x in xs {
                        self.f64(*x);
                    }
                }
                ColData::Bool(xs) => {
                    self.u8(3);
                    for x in xs {
                        self.bool(*x);
                    }
                }
                ColData::Str(xs) => {
                    self.u8(4);
                    for x in xs {
                        self.str(x);
                    }
                }
                ColData::Mixed(xs) => {
                    self.u8(5);
                    for x in xs {
                        self.value(x);
                    }
                }
            }
            match col.validity() {
                None => self.u8(0),
                Some(mask) => {
                    self.u8(1);
                    for v in mask {
                        self.bool(*v);
                    }
                }
            }
        }
    }
    fn error(&mut self, e: &MixError) {
        match e {
            MixError::Parse { what, pos, msg } => {
                self.u8(0);
                self.str(what);
                self.u64(*pos as u64);
                self.str(msg);
            }
            MixError::Unknown { what, name } => {
                self.u8(1);
                self.str(what);
                self.str(name);
            }
            MixError::Invalid(m) => {
                self.u8(2);
                self.str(m);
            }
            MixError::Navigation(m) => {
                self.u8(3);
                self.str(m);
            }
            MixError::Internal(m) => {
                self.u8(4);
                self.str(m);
            }
            MixError::Source { source, msg } => {
                self.u8(5);
                self.str(source.as_str());
                self.str(msg);
            }
            MixError::Backend(BackendError {
                server,
                kind,
                msg,
                retries,
            }) => {
                self.u8(6);
                self.str(server.as_str());
                self.u8(match kind {
                    FaultKind::Transient => 0,
                    FaultKind::Permanent => 1,
                });
                self.str(msg);
                self.u32(*retries);
            }
            MixError::Plan(m) => {
                self.u8(7);
                self.str(m);
            }
        }
    }
    fn command(&mut self, c: &Command) {
        match c {
            Command::Query { text } => {
                self.u8(0);
                self.str(text);
            }
            Command::Q { text, from } => {
                self.u8(1);
                self.str(text);
                self.node(*from);
            }
            Command::D { p } => {
                self.u8(2);
                self.node(*p);
            }
            Command::R { p } => {
                self.u8(3);
                self.node(*p);
            }
            Command::Fl { p } => {
                self.u8(4);
                self.node(*p);
            }
            Command::Fv { p } => {
                self.u8(5);
                self.node(*p);
            }
            Command::Children { p } => {
                self.u8(6);
                self.node(*p);
            }
            Command::ChildCount { p } => {
                self.u8(7);
                self.node(*p);
            }
            Command::Render { p } => {
                self.u8(8);
                self.node(*p);
            }
            Command::Explain { p } => {
                self.u8(9);
                self.node(*p);
            }
            Command::Export { p, max_rows } => {
                self.u8(10);
                self.node(*p);
                self.u32(*max_rows);
            }
            Command::Stats => self.u8(11),
        }
    }
    fn reply(&mut self, r: &Reply) {
        match r {
            Reply::Node(n) => {
                self.u8(0);
                self.node(*n);
            }
            Reply::Step(opt) => {
                self.u8(1);
                match opt {
                    None => self.u8(0),
                    Some(n) => {
                        self.u8(1);
                        self.node(*n);
                    }
                }
            }
            Reply::Label(opt) => {
                self.u8(2);
                match opt {
                    None => self.u8(0),
                    Some(n) => {
                        self.u8(1);
                        self.str(n.as_str());
                    }
                }
            }
            Reply::Value(opt) => {
                self.u8(3);
                match opt {
                    None => self.u8(0),
                    Some(v) => {
                        self.u8(1);
                        self.value(v);
                    }
                }
            }
            Reply::Nodes(nodes) => {
                self.u8(4);
                self.u32(nodes.len() as u32);
                for n in nodes {
                    self.node(*n);
                }
            }
            Reply::Count(c) => {
                self.u8(5);
                self.u64(*c);
            }
            Reply::Text(t) => {
                self.u8(6);
                self.str(t);
            }
            Reply::Block(b) => {
                self.u8(7);
                self.block(b);
            }
            Reply::Stats(counters) => {
                self.u8(8);
                self.u32(counters.len() as u32);
                for (label, v) in counters {
                    self.str(label);
                    self.u64(*v);
                }
            }
            Reply::Err(e) => {
                self.u8(9);
                self.error(e);
            }
        }
    }
    fn frame(&mut self, f: &Frame) {
        match f {
            Frame::Hello { version } => {
                self.u8(0);
                self.u8(*version);
            }
            Frame::Welcome { version, session } => {
                self.u8(1);
                self.u8(*version);
                self.u64(*session);
            }
            Frame::Reject { reason } => {
                self.u8(2);
                self.str(reason);
            }
            Frame::Cmd(c) => {
                self.u8(3);
                self.command(c);
            }
            Frame::Rep(r) => {
                self.u8(4);
                self.reply(r);
            }
            Frame::Bye => self.u8(5),
        }
    }
}

// ---- decoding --------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DResult<T> = Result<T, DecodeError>;

impl<'a> Dec<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> DResult<T> {
        Err(DecodeError {
            pos: self.pos,
            msg: msg.into(),
        })
    }
    /// Unread payload bytes. Saturating: even if an arithmetic bug ever
    /// pushed `pos` past the end, length math degrades to "0 remaining"
    /// (a truncation error) instead of an underflow panic.
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
    fn take(&mut self, n: usize) -> DResult<&'a [u8]> {
        if self.remaining() < n {
            return self.err(format!(
                "truncated frame: need {n} bytes, have {}",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> DResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> DResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => self.err(format!("bool byte must be 0/1, got {b}")),
        }
    }
    fn u32(&mut self) -> DResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> DResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> DResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> DResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A count prefix that still has to fit in the remaining payload:
    /// `min_elem` is the smallest possible encoding of one element
    /// (must be > 0), so a corrupt count fails here instead of in an
    /// allocation. Division, not multiplication: `n * min_elem` could
    /// itself overflow-saturate and mask the real bound.
    fn count(&mut self, min_elem: usize) -> DResult<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_elem.max(1) {
            return self.err(format!("count {n} exceeds remaining payload"));
        }
        Ok(n)
    }
    /// Pre-allocation cap for a claimed element count: never reserve
    /// more than the remaining payload could possibly hold, so a frame
    /// whose count field survives the semantic checks (e.g. block rows,
    /// whose per-element floor is 0 bytes for a `Null` column) still
    /// cannot force a large allocation before the first element read
    /// fails. Capacity is a hint — `push` past it just grows normally.
    fn prealloc(&self, n: usize, min_elem: usize) -> usize {
        n.min(self.remaining() / min_elem.max(1)).min(1 << 16)
    }
    fn str(&mut self) -> DResult<String> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.err("string is not valid UTF-8"),
        }
    }
    fn node(&mut self) -> DResult<WireNode> {
        Ok(WireNode {
            result: self.u32()?,
            node: self.u32()?,
        })
    }
    fn value(&mut self) -> DResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.bool()?),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(self.f64()?),
            4 => Value::Str(Arc::from(self.str()?)),
            t => return self.err(format!("unknown value tag {t}")),
        })
    }
    fn block(&mut self) -> DResult<ColumnBlock> {
        // Rows is NOT bounded by remaining bytes — a `Null` column costs
        // zero bytes per row, so a legitimate count can exceed the
        // payload. It is bounded by the frame cap instead, and every
        // per-column allocation below is additionally capped by what
        // the payload could actually hold (`prealloc`).
        let rows = self.u32()? as usize;
        if rows > MAX_FRAME_LEN as usize {
            return self.err(format!("block row count {rows} exceeds frame bound"));
        }
        // Each column costs at least the type tag + the validity tag.
        let arity = self.count(2)?;
        // A zero-row block still shouldn't claim absurd width.
        if rows.saturating_mul(arity) > MAX_FRAME_LEN as usize {
            return self.err(format!("block {rows}x{arity} exceeds frame bound"));
        }
        let mut cols = Vec::with_capacity(self.prealloc(arity, 2));
        for _ in 0..arity {
            let data = match self.u8()? {
                0 => ColData::Null,
                1 => {
                    let mut xs = Vec::with_capacity(self.prealloc(rows, 8));
                    for _ in 0..rows {
                        xs.push(self.i64()?);
                    }
                    ColData::Int(xs)
                }
                2 => {
                    let mut xs = Vec::with_capacity(self.prealloc(rows, 8));
                    for _ in 0..rows {
                        xs.push(self.f64()?);
                    }
                    ColData::Float(xs)
                }
                3 => {
                    let mut xs = Vec::with_capacity(self.prealloc(rows, 1));
                    for _ in 0..rows {
                        xs.push(self.bool()?);
                    }
                    ColData::Bool(xs)
                }
                4 => {
                    let mut xs = Vec::with_capacity(self.prealloc(rows, 4));
                    for _ in 0..rows {
                        xs.push(Arc::from(self.str()?));
                    }
                    ColData::Str(xs)
                }
                5 => {
                    let mut xs = Vec::with_capacity(self.prealloc(rows, 1));
                    for _ in 0..rows {
                        xs.push(self.value()?);
                    }
                    ColData::Mixed(xs)
                }
                t => return self.err(format!("unknown column tag {t}")),
            };
            let valid = match self.u8()? {
                0 => None,
                1 => {
                    let mut mask = Vec::with_capacity(self.prealloc(rows, 1));
                    for _ in 0..rows {
                        mask.push(self.bool()?);
                    }
                    Some(mask)
                }
                t => return self.err(format!("validity tag must be 0/1, got {t}")),
            };
            match Column::from_parts(data, valid, rows) {
                Ok(c) => cols.push(c),
                Err(e) => return self.err(e.to_string()),
            }
        }
        Ok(ColumnBlock::from_columns(cols, rows))
    }
    fn error(&mut self) -> DResult<MixError> {
        Ok(match self.u8()? {
            0 => {
                let what = static_what(&self.str()?);
                let pos = self.u64()? as usize;
                MixError::parse(what, pos, self.str()?)
            }
            1 => {
                let what = static_what(&self.str()?);
                MixError::unknown(what, self.str()?)
            }
            2 => MixError::Invalid(self.str()?),
            3 => MixError::Navigation(self.str()?),
            4 => MixError::Internal(self.str()?),
            5 => MixError::Source {
                source: Name::new(self.str()?),
                msg: self.str()?,
            },
            6 => {
                let server = Name::new(self.str()?);
                let kind = match self.u8()? {
                    0 => FaultKind::Transient,
                    1 => FaultKind::Permanent,
                    t => return self.err(format!("unknown fault kind {t}")),
                };
                let msg = self.str()?;
                let retries = self.u32()?;
                MixError::Backend(BackendError {
                    server,
                    kind,
                    msg,
                    retries,
                })
            }
            7 => MixError::Plan(self.str()?),
            t => return self.err(format!("unknown error tag {t}")),
        })
    }
    fn command(&mut self) -> DResult<Command> {
        Ok(match self.u8()? {
            0 => Command::Query { text: self.str()? },
            1 => Command::Q {
                text: self.str()?,
                from: self.node()?,
            },
            2 => Command::D { p: self.node()? },
            3 => Command::R { p: self.node()? },
            4 => Command::Fl { p: self.node()? },
            5 => Command::Fv { p: self.node()? },
            6 => Command::Children { p: self.node()? },
            7 => Command::ChildCount { p: self.node()? },
            8 => Command::Render { p: self.node()? },
            9 => Command::Explain { p: self.node()? },
            10 => Command::Export {
                p: self.node()?,
                max_rows: self.u32()?,
            },
            11 => Command::Stats,
            t => return self.err(format!("unknown command tag {t}")),
        })
    }
    fn reply(&mut self) -> DResult<Reply> {
        Ok(match self.u8()? {
            0 => Reply::Node(self.node()?),
            1 => Reply::Step(match self.u8()? {
                0 => None,
                1 => Some(self.node()?),
                t => return self.err(format!("option tag must be 0/1, got {t}")),
            }),
            2 => Reply::Label(match self.u8()? {
                0 => None,
                1 => Some(Name::new(self.str()?)),
                t => return self.err(format!("option tag must be 0/1, got {t}")),
            }),
            3 => Reply::Value(match self.u8()? {
                0 => None,
                1 => Some(self.value()?),
                t => return self.err(format!("option tag must be 0/1, got {t}")),
            }),
            4 => {
                let n = self.count(8)?;
                let mut nodes = Vec::with_capacity(self.prealloc(n, 8));
                for _ in 0..n {
                    nodes.push(self.node()?);
                }
                Reply::Nodes(nodes)
            }
            5 => Reply::Count(self.u64()?),
            6 => Reply::Text(self.str()?),
            7 => Reply::Block(self.block()?),
            8 => {
                let n = self.count(12)?;
                let mut counters = Vec::with_capacity(self.prealloc(n, 12));
                for _ in 0..n {
                    let label = self.str()?;
                    counters.push((label, self.u64()?));
                }
                Reply::Stats(counters)
            }
            9 => Reply::Err(self.error()?),
            t => return self.err(format!("unknown reply tag {t}")),
        })
    }
    fn frame(&mut self) -> DResult<Frame> {
        let f = match self.u8()? {
            0 => Frame::Hello {
                version: self.u8()?,
            },
            1 => Frame::Welcome {
                version: self.u8()?,
                session: self.u64()?,
            },
            2 => Frame::Reject {
                reason: self.str()?,
            },
            3 => Frame::Cmd(self.command()?),
            4 => Frame::Rep(self.reply()?),
            5 => Frame::Bye,
            t => return self.err(format!("unknown frame tag {t}")),
        };
        if self.pos != self.buf.len() {
            return self.err(format!(
                "{} trailing bytes after frame body",
                self.buf.len() - self.pos
            ));
        }
        Ok(f)
    }
}

/// `MixError::Parse`/`Unknown` carry `&'static str` category tags; the
/// wire ships them as text, so decoding maps each back to the known
/// static. Unrecognized categories collapse to `"input"` — the message
/// text (which is what users see) is preserved exactly either way.
fn static_what(s: &str) -> &'static str {
    match s {
        "sql" => "sql",
        "xml" => "xml",
        "xquery" => "xquery",
        "wire" => "wire",
        "column" => "column",
        "key column" => "key column",
        "server" => "server",
        "source" => "source",
        "table" => "table",
        "view" => "view",
        "variable" => "variable",
        _ => "input",
    }
}

impl Frame {
    /// Encode the whole frame — length prefix, version byte, tag, body.
    ///
    /// Panics if the frame exceeds [`MAX_FRAME_LEN`] — that is a
    /// programmer error (the engine caps block sizes well below it);
    /// use [`Frame::try_encode`] where the frame size is data-driven.
    pub fn encode(&self) -> Vec<u8> {
        self.try_encode().expect("frame exceeds MAX_FRAME_LEN")
    }

    /// Checked encode: errors (instead of silently truncating the
    /// `u32` length prefix and shipping a frame the peer would
    /// misparse) when the body exceeds [`MAX_FRAME_LEN`]. The single
    /// whole-frame check also subsumes every interior `as u32` count
    /// cast: any string/sequence long enough to truncate its count
    /// prefix necessarily pushes the frame past the cap.
    pub fn try_encode(&self) -> Result<Vec<u8>, DecodeError> {
        let mut e = Enc {
            buf: vec![0u8; 4], // length prefix patched below
        };
        e.u8(PROTO_VERSION);
        e.frame(self);
        let len = match u32::try_from(e.buf.len() - 4) {
            Ok(n) if n <= MAX_FRAME_LEN => n,
            _ => {
                return Err(DecodeError {
                    pos: 0,
                    msg: format!(
                        "frame body of {} bytes exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}",
                        e.buf.len() - 4
                    ),
                })
            }
        };
        e.buf[..4].copy_from_slice(&len.to_le_bytes());
        Ok(e.buf)
    }

    /// Decode one frame payload (everything after the length prefix:
    /// version byte, tag, body).
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, DecodeError> {
        let mut d = Dec {
            buf: payload,
            pos: 0,
        };
        let version = d.u8()?;
        if version != PROTO_VERSION {
            return d.err(format!(
                "protocol version mismatch: peer speaks v{version}, this build v{PROTO_VERSION}"
            ));
        }
        d.frame()
    }
}

/// Write one frame; returns the bytes put on the wire (header
/// included), for byte accounting.
pub fn write_frame<W: Write>(w: &mut W, f: &Frame) -> io::Result<usize> {
    let bytes = f.try_encode()?;
    w.write_all(&bytes)?;
    Ok(bytes.len())
}

/// Read one frame. `Ok(None)` means the peer closed cleanly at a frame
/// boundary; a mid-frame close is `UnexpectedEof` and a malformed
/// payload is `InvalidData`. On success, also returns the bytes
/// consumed (header included).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<(Frame, usize)>> {
    let mut lenbuf = [0u8; 4];
    // A clean close before any header byte is end-of-stream, not error.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut lenbuf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(lenbuf);
    if !(1..=MAX_FRAME_LEN).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside [1, {MAX_FRAME_LEN}]"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let frame = Frame::decode_payload(&payload)?;
    Ok(Some((frame, 4 + payload.len())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: &Frame) {
        let bytes = f.encode();
        let (back, n) = read_frame(&mut &bytes[..]).unwrap().unwrap();
        assert_eq!(&back, f);
        assert_eq!(n, bytes.len());
        // Canonical: re-encoding reproduces the input bit for bit.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn scalar_frames_round_trip() {
        round_trip(&Frame::Hello {
            version: PROTO_VERSION,
        });
        round_trip(&Frame::Welcome {
            version: PROTO_VERSION,
            session: 42,
        });
        round_trip(&Frame::Reject {
            reason: "session limit reached".into(),
        });
        round_trip(&Frame::Bye);
    }

    #[test]
    fn commands_round_trip() {
        let p = WireNode { result: 3, node: 9 };
        for cmd in [
            Command::Query {
                text: "FOR $C IN source(&root1)/customer RETURN $C".into(),
            },
            Command::Q {
                text: "FOR $O IN document(root)/x RETURN $O".into(),
                from: p,
            },
            Command::D { p },
            Command::R { p },
            Command::Fl { p },
            Command::Fv { p },
            Command::Children { p },
            Command::ChildCount { p },
            Command::Render { p },
            Command::Explain { p },
            Command::Export { p, max_rows: 128 },
            Command::Stats,
        ] {
            round_trip(&Frame::Cmd(cmd));
        }
    }

    #[test]
    fn replies_round_trip() {
        let p = WireNode {
            result: 0,
            node: 17,
        };
        let block = ColumnBlock::from_rows(vec![
            vec![Value::Int(1), Value::str("a"), Value::Null],
            vec![Value::Int(2), Value::Null, Value::Bool(true)],
            vec![Value::Int(3), Value::str("c"), Value::Float(-0.0)],
        ]);
        for rep in [
            Reply::Node(p),
            Reply::Step(None),
            Reply::Step(Some(p)),
            Reply::Label(None),
            Reply::Label(Some(Name::new("CustRec"))),
            Reply::Value(Some(Value::Float(2.5))),
            Reply::Value(None),
            Reply::Nodes(vec![p, WireNode { result: 1, node: 2 }]),
            Reply::Count(7),
            Reply::Text("== plan ==".into()),
            Reply::Block(block),
            Reply::Stats(vec![
                ("tuples_shipped".into(), 12),
                ("sql_queries".into(), 1),
            ]),
            Reply::Err(MixError::plan("stale result handle 9")),
        ] {
            round_trip(&Frame::Rep(rep));
        }
    }

    #[test]
    fn errors_round_trip() {
        for e in [
            MixError::parse("xquery", 10, "expected FOR"),
            MixError::unknown("table", "custs"),
            MixError::invalid("bad plan"),
            MixError::Navigation("fv on element".into()),
            MixError::internal("oops"),
            MixError::source("db1", "gone"),
            MixError::backend("db2", FaultKind::Transient, "reset"),
            MixError::backend("db3", FaultKind::Permanent, "dead"),
            MixError::plan("apply param must be a partition"),
        ] {
            round_trip(&Frame::Rep(Reply::Err(e)));
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = Frame::Bye.encode();
        bytes[4] = PROTO_VERSION + 1; // corrupt the version byte
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version mismatch"), "{err}");
    }

    #[test]
    fn truncation_and_garbage_are_errors_not_panics() {
        let bytes = Frame::Cmd(Command::Query {
            text: "FOR $C IN source(&root1)/c RETURN $C".into(),
        })
        .encode();
        // Every prefix either cleanly reports EOF-at-boundary or fails.
        for cut in 0..bytes.len() {
            let r = read_frame(&mut &bytes[..cut]);
            match r {
                Ok(None) => assert_eq!(cut, 0, "only an empty stream is a clean close"),
                Ok(Some(_)) => panic!("truncated frame decoded at cut {cut}"),
                Err(_) => {}
            }
        }
        // Absurd length prefix is bounded before allocation.
        let mut huge = bytes.clone();
        huge[..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(read_frame(&mut &huge[..]).is_err());
        // Trailing garbage after a valid body is rejected.
        let mut padded = Frame::Bye.encode();
        padded.push(0xAA);
        let len = (padded.len() - 4) as u32;
        padded[..4].copy_from_slice(&len.to_le_bytes());
        assert!(read_frame(&mut &padded[..]).is_err());
    }

    #[test]
    fn non_canonical_bool_is_rejected() {
        let mut bytes = Frame::Rep(Reply::Value(Some(Value::Bool(true)))).encode();
        *bytes.last_mut().unwrap() = 2;
        assert!(read_frame(&mut &bytes[..]).is_err());
    }

    #[test]
    fn decode_error_maps_into_mix_and_io_errors() {
        let e = DecodeError {
            pos: 5,
            msg: "boom".into(),
        };
        assert_eq!(
            MixError::from(e.clone()).to_string(),
            "wire parse error at 5: boom"
        );
        assert_eq!(io::Error::from(e).kind(), io::ErrorKind::InvalidData);
    }
}
