//! Plan trees: pretty printing, variable analysis, transformation.

use crate::op::Op;
use mix_common::{MixError, Name, Result};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// A complete XMAS plan (the root is normally a `tD`).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub root: Op,
}

impl Plan {
    /// Wrap an operator tree.
    pub fn new(root: Op) -> Plan {
        Plan { root }
    }

    /// Paper-figure-style rendering: one operator per line, inputs
    /// indented, nested plans flagged with `p:` and a `|` gutter.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_op(&self.root, &mut out, 0);
        out
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_op(op: &Op, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    let _ = writeln!(out, "{pad}{}", op.head());
    if let Op::Apply { plan, .. } = op {
        // Render the nested plan in a `|` gutter before the input.
        let mut nested = String::new();
        render_op(plan, &mut nested, 0);
        for line in nested.lines() {
            let _ = writeln!(out, "{pad}  | {line}");
        }
    }
    for input in op.inputs() {
        render_op(input, out, depth + 1);
    }
}

/// The variables an operator exports, plus — for partition-valued
/// variables produced by `groupBy` — the variables of the tuples inside
/// each partition (needed to resolve `nestedSrc`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarInfo {
    /// Exported variables, in a stable order.
    pub vars: Vec<Name>,
    /// partition variable → variables of the tuples it contains.
    pub partitions: HashMap<Name, Vec<Name>>,
}

impl VarInfo {
    fn with_var(mut self, v: Name) -> VarInfo {
        if !self.vars.contains(&v) {
            self.vars.push(v);
        }
        self
    }
}

/// Compute [`VarInfo`] for `op`. `env` resolves `nestedSrc` variables
/// (partition var → inner tuple variables); top-level plans use an
/// empty env.
pub fn var_info(op: &Op, env: &HashMap<Name, Vec<Name>>) -> Result<VarInfo> {
    let dup = |v: &Name| MixError::invalid(format!("variable {} bound twice", v.display_var()));
    Ok(match op {
        Op::MkSrc { var, .. } => VarInfo::default().with_var(var.clone()),
        Op::MkSrcOver { input, var } => {
            // The inner plan must be a complete (tD-rooted) plan.
            if !matches!(**input, Op::TupleDestroy { .. } | Op::Empty { .. }) {
                return Err(MixError::invalid("mksrc view plan must be rooted at tD"));
            }
            var_info(input, env)?;
            VarInfo::default().with_var(var.clone())
        }
        Op::GetD {
            input, from, to, ..
        } => {
            let info = var_info(input, env)?;
            if !info.vars.contains(from) {
                return Err(MixError::invalid(format!(
                    "getD source variable {} not bound by input",
                    from.display_var()
                )));
            }
            if info.vars.contains(to) {
                return Err(dup(to));
            }
            info.with_var(to.clone())
        }
        Op::Select { input, cond } => {
            let info = var_info(input, env)?;
            for v in cond.vars() {
                if !info.vars.contains(&v) {
                    return Err(MixError::invalid(format!(
                        "select condition references unbound {}",
                        v.display_var()
                    )));
                }
            }
            info
        }
        Op::Project { input, vars } => {
            let info = var_info(input, env)?;
            for v in vars {
                if !info.vars.contains(v) {
                    return Err(MixError::invalid(format!(
                        "projection of unbound {}",
                        v.display_var()
                    )));
                }
            }
            VarInfo {
                vars: vars.clone(),
                partitions: info
                    .partitions
                    .into_iter()
                    .filter(|(k, _)| vars.contains(k))
                    .collect(),
            }
        }
        Op::Join { left, right, cond } => {
            let l = var_info(left, env)?;
            let r = var_info(right, env)?;
            if let Some(shared) = l.vars.iter().find(|v| r.vars.contains(v)) {
                return Err(MixError::invalid(format!(
                    "join inputs share variable {}",
                    shared.display_var()
                )));
            }
            if let Some(c) = cond {
                for v in c.vars() {
                    if !l.vars.contains(&v) && !r.vars.contains(&v) {
                        return Err(MixError::invalid(format!(
                            "join condition references unbound {}",
                            v.display_var()
                        )));
                    }
                }
            }
            let mut vars = l.vars;
            vars.extend(r.vars);
            let mut partitions = l.partitions;
            partitions.extend(r.partitions);
            VarInfo { vars, partitions }
        }
        Op::SemiJoin {
            left,
            right,
            cond,
            keep,
        } => {
            let l = var_info(left, env)?;
            let r = var_info(right, env)?;
            if let Some(c) = cond {
                for v in c.vars() {
                    if !l.vars.contains(&v) && !r.vars.contains(&v) {
                        return Err(MixError::invalid(format!(
                            "semijoin condition references unbound {}",
                            v.display_var()
                        )));
                    }
                }
            }
            match keep {
                crate::op::Side::Left => l,
                crate::op::Side::Right => r,
            }
        }
        Op::CrElt {
            input,
            group,
            children,
            out,
            ..
        } => {
            let info = var_info(input, env)?;
            for v in group.iter().chain(std::iter::once(children.var())) {
                if !info.vars.contains(v) {
                    return Err(MixError::invalid(format!(
                        "crElt references unbound {}",
                        v.display_var()
                    )));
                }
            }
            if info.vars.contains(out) {
                return Err(dup(out));
            }
            info.with_var(out.clone())
        }
        Op::Cat {
            input,
            left,
            right,
            out,
        } => {
            let info = var_info(input, env)?;
            for v in [left.var(), right.var()] {
                if !info.vars.contains(v) {
                    return Err(MixError::invalid(format!(
                        "cat references unbound {}",
                        v.display_var()
                    )));
                }
            }
            if info.vars.contains(out) {
                return Err(dup(out));
            }
            info.with_var(out.clone())
        }
        Op::TupleDestroy { input, var, .. } => {
            let info = var_info(input, env)?;
            if !info.vars.contains(var) {
                return Err(MixError::invalid(format!(
                    "tD of unbound {}",
                    var.display_var()
                )));
            }
            // tD exports a tree, not tuples: no variables flow upward.
            VarInfo::default()
        }
        Op::GroupBy { input, group, out } => {
            let info = var_info(input, env)?;
            for v in group {
                if !info.vars.contains(v) {
                    return Err(MixError::invalid(format!(
                        "group-by on unbound {}",
                        v.display_var()
                    )));
                }
            }
            if info.vars.contains(out) {
                return Err(dup(out));
            }
            let mut partitions = HashMap::new();
            partitions.insert(out.clone(), info.vars.clone());
            VarInfo {
                vars: group.iter().cloned().chain([out.clone()]).collect(),
                partitions,
            }
        }
        Op::Apply {
            input,
            plan,
            param,
            out,
        } => {
            let info = var_info(input, env)?;
            let mut nested_env = env.clone();
            if let Some(p) = param {
                let inner = info.partitions.get(p).cloned().ok_or_else(|| {
                    MixError::invalid(format!(
                        "apply parameter {} is not a partition variable",
                        p.display_var()
                    ))
                })?;
                nested_env.insert(p.clone(), inner);
            }
            // The nested plan must itself be well-formed under that env.
            var_info(plan, &nested_env)?;
            if info.vars.contains(out) {
                return Err(dup(out));
            }
            info.with_var(out.clone())
        }
        Op::NestedSrc { var } => {
            let inner = env.get(var).ok_or_else(|| {
                MixError::invalid(format!(
                    "nestedSrc({}) used outside a matching apply",
                    var.display_var()
                ))
            })?;
            VarInfo {
                vars: inner.clone(),
                partitions: HashMap::new(),
            }
        }
        Op::RelQuery { map, .. } => {
            let mut info = VarInfo::default();
            for b in map {
                if info.vars.contains(&b.var) {
                    return Err(dup(&b.var));
                }
                info.vars.push(b.var.clone());
            }
            info
        }
        Op::OrderBy { input, vars } => {
            let info = var_info(input, env)?;
            for v in vars {
                if !info.vars.contains(v) {
                    return Err(MixError::invalid(format!(
                        "orderBy on unbound {}",
                        v.display_var()
                    )));
                }
            }
            info
        }
        Op::Empty { vars } => VarInfo {
            vars: vars.clone(),
            partitions: HashMap::new(),
        },
    })
}

/// Rename every occurrence of variable `from` to `to`, recursively
/// (including nested plans and conditions).
pub fn rename_var(op: &Op, from: &Name, to: &Name) -> Op {
    let r = |n: &Name| if n == from { to.clone() } else { n.clone() };
    let rv = |vs: &[Name]| vs.iter().map(&r).collect::<Vec<_>>();
    let rb = |b: &Op| Box::new(rename_var(b, from, to));
    let rc = |c: &crate::op::ChildSpec| match c {
        crate::op::ChildSpec::ListVar(v) => crate::op::ChildSpec::ListVar(r(v)),
        crate::op::ChildSpec::Single(v) => crate::op::ChildSpec::Single(r(v)),
    };
    match op {
        Op::MkSrc { source, var } => Op::MkSrc {
            source: source.clone(),
            var: r(var),
        },
        Op::MkSrcOver { input, var } => Op::MkSrcOver {
            input: rb(input),
            var: r(var),
        },
        Op::GetD {
            input,
            from: f,
            path,
            to: t,
        } => Op::GetD {
            input: rb(input),
            from: r(f),
            path: path.clone(),
            to: r(t),
        },
        Op::Select { input, cond } => Op::Select {
            input: rb(input),
            cond: cond.rename(from, to),
        },
        Op::Project { input, vars } => Op::Project {
            input: rb(input),
            vars: rv(vars),
        },
        Op::Join { left, right, cond } => Op::Join {
            left: rb(left),
            right: rb(right),
            cond: cond.as_ref().map(|c| c.rename(from, to)),
        },
        Op::SemiJoin {
            left,
            right,
            cond,
            keep,
        } => Op::SemiJoin {
            left: rb(left),
            right: rb(right),
            cond: cond.as_ref().map(|c| c.rename(from, to)),
            keep: *keep,
        },
        Op::CrElt {
            input,
            label,
            skolem,
            group,
            children,
            out,
            tag,
        } => Op::CrElt {
            input: rb(input),
            label: label.clone(),
            skolem: skolem.clone(),
            group: rv(group),
            children: rc(children),
            out: r(out),
            // Oid identity survives hygiene renames (see `Op::CrElt`).
            tag: tag.clone(),
        },
        Op::Cat {
            input,
            left,
            right,
            out,
        } => Op::Cat {
            input: rb(input),
            left: rc(left),
            right: rc(right),
            out: r(out),
        },
        Op::TupleDestroy { input, var, root } => Op::TupleDestroy {
            input: rb(input),
            var: r(var),
            root: root.clone(),
        },
        Op::GroupBy { input, group, out } => Op::GroupBy {
            input: rb(input),
            group: rv(group),
            out: r(out),
        },
        Op::Apply {
            input,
            plan,
            param,
            out,
        } => Op::Apply {
            input: rb(input),
            plan: rb(plan),
            param: param.as_ref().map(&r),
            out: r(out),
        },
        Op::NestedSrc { var } => Op::NestedSrc { var: r(var) },
        Op::RelQuery { server, sql, map } => Op::RelQuery {
            server: server.clone(),
            sql: sql.clone(),
            map: map
                .iter()
                .map(|b| crate::op::RqBinding {
                    var: r(&b.var),
                    kind: b.kind.clone(),
                })
                .collect(),
        },
        Op::OrderBy { input, vars } => Op::OrderBy {
            input: rb(input),
            vars: rv(vars),
        },
        Op::Empty { vars } => Op::Empty { vars: rv(vars) },
    }
}

/// All variables mentioned anywhere in the plan (bound or referenced) —
/// used for fresh-name generation during rewriting.
pub fn all_vars(op: &Op) -> Vec<Name> {
    let mut out = Vec::new();
    collect_vars(op, &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_vars(op: &Op, out: &mut Vec<Name>) {
    match op {
        Op::MkSrc { var, .. } | Op::NestedSrc { var } => out.push(var.clone()),
        Op::MkSrcOver { var, .. } => out.push(var.clone()),
        Op::GetD { from, to, .. } => {
            out.push(from.clone());
            out.push(to.clone());
        }
        Op::Select { cond, .. } => out.extend(cond.vars()),
        Op::Project { vars, .. } | Op::OrderBy { vars, .. } | Op::Empty { vars } => {
            out.extend(vars.iter().cloned())
        }
        Op::Join { cond, .. } | Op::SemiJoin { cond, .. } => {
            if let Some(c) = cond {
                out.extend(c.vars());
            }
        }
        Op::CrElt {
            group,
            children,
            out: o,
            ..
        } => {
            out.extend(group.iter().cloned());
            out.push(children.var().clone());
            out.push(o.clone());
        }
        Op::Cat {
            left,
            right,
            out: o,
            ..
        } => {
            out.push(left.var().clone());
            out.push(right.var().clone());
            out.push(o.clone());
        }
        Op::TupleDestroy { var, .. } => out.push(var.clone()),
        Op::GroupBy { group, out: o, .. } => {
            out.extend(group.iter().cloned());
            out.push(o.clone());
        }
        Op::Apply { param, out: o, .. } => {
            if let Some(p) = param {
                out.push(p.clone());
            }
            out.push(o.clone());
        }
        Op::RelQuery { map, .. } => out.extend(map.iter().map(|b| b.var.clone())),
    }
    for i in op.inputs() {
        collect_vars(i, out);
    }
    if let Op::Apply { plan, .. } = op {
        collect_vars(plan, out);
    }
}

/// Apply a variable mapping to every `crElt` oid tag in the plan.
///
/// Tags deliberately do not follow [`rename_var`]: rewrite-internal
/// hygiene renames must not change minted oids. Composition-time
/// alpha-renaming is the one rename that *is* part of node identity
/// (it runs identically under every evaluation mode), so splicing
/// calls this with the same mapping it used for the variables.
pub fn rename_skolem_tags(op: &Op, mapping: &std::collections::HashMap<Name, Name>) -> Op {
    let mut out = op.clone();
    if let Op::CrElt { tag, .. } = &mut out {
        if let Some(t) = mapping.get(tag) {
            *tag = t.clone();
        }
    }
    let rb = |b: &mut Box<Op>| **b = rename_skolem_tags(b, mapping);
    match &mut out {
        Op::MkSrcOver { input, .. }
        | Op::GetD { input, .. }
        | Op::Select { input, .. }
        | Op::Project { input, .. }
        | Op::CrElt { input, .. }
        | Op::Cat { input, .. }
        | Op::TupleDestroy { input, .. }
        | Op::GroupBy { input, .. }
        | Op::OrderBy { input, .. } => rb(input),
        Op::Apply { input, plan, .. } => {
            rb(input);
            rb(plan);
        }
        Op::Join { left, right, .. } | Op::SemiJoin { left, right, .. } => {
            rb(left);
            rb(right);
        }
        Op::MkSrc { .. } | Op::NestedSrc { .. } | Op::RelQuery { .. } | Op::Empty { .. } => {}
    }
    out
}

/// A fresh variable named `prefix` + counter, avoiding everything in
/// `taken`.
pub fn fresh_var(prefix: &str, taken: &[Name]) -> Name {
    for i in 0.. {
        let candidate = Name::new(format!("{prefix}{i}"));
        if !taken.contains(&candidate) {
            return candidate;
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use mix_common::CmpOp;
    use mix_xml::LabelPath;

    fn mk(source: &str, var: &str) -> Op {
        Op::MkSrc {
            source: Name::new(source),
            var: Name::new(var),
        }
    }

    #[test]
    fn var_info_tracks_bindings() {
        let env = HashMap::new();
        let plan = Op::GetD {
            input: Box::new(mk("root1", "K")),
            from: Name::new("K"),
            path: LabelPath::parse("customer").unwrap(),
            to: Name::new("C"),
        };
        let info = var_info(&plan, &env).unwrap();
        assert_eq!(info.vars, vec![Name::new("K"), Name::new("C")]);
    }

    #[test]
    fn join_requires_disjoint_vars() {
        let env = HashMap::new();
        let bad = Op::Join {
            left: Box::new(mk("a", "X")),
            right: Box::new(mk("b", "X")),
            cond: None,
        };
        assert!(var_info(&bad, &env).is_err());
    }

    #[test]
    fn select_unbound_var_rejected() {
        let env = HashMap::new();
        let bad = Op::Select {
            input: Box::new(mk("a", "X")),
            cond: Cond::cmp_const("Y", CmpOp::Eq, 1),
        };
        assert!(var_info(&bad, &env).is_err());
    }

    #[test]
    fn group_by_and_apply_env() {
        let env = HashMap::new();
        let grouped = Op::GroupBy {
            input: Box::new(mk("a", "X")),
            group: vec![Name::new("X")],
            out: Name::new("P"),
        };
        let info = var_info(&grouped, &env).unwrap();
        assert_eq!(info.vars, vec![Name::new("X"), Name::new("P")]);
        assert_eq!(info.partitions[&Name::new("P")], vec![Name::new("X")]);

        let apply = Op::Apply {
            input: Box::new(grouped),
            plan: Box::new(Op::TupleDestroy {
                input: Box::new(Op::NestedSrc {
                    var: Name::new("P"),
                }),
                var: Name::new("X"),
                root: None,
            }),
            param: Some(Name::new("P")),
            out: Name::new("Z"),
        };
        let info = var_info(&apply, &env).unwrap();
        assert!(info.vars.contains(&Name::new("Z")));
    }

    #[test]
    fn nested_src_outside_apply_is_rejected() {
        let env = HashMap::new();
        assert!(var_info(
            &Op::NestedSrc {
                var: Name::new("P")
            },
            &env
        )
        .is_err());
    }

    #[test]
    fn rename_is_deep() {
        let plan = Op::Select {
            input: Box::new(Op::GetD {
                input: Box::new(mk("r", "K")),
                from: Name::new("K"),
                path: LabelPath::parse("a").unwrap(),
                to: Name::new("X"),
            }),
            cond: Cond::cmp_const("X", CmpOp::Gt, 5),
        };
        let renamed = rename_var(&plan, &Name::new("X"), &Name::new("Y"));
        let text = Plan::new(renamed).render();
        assert!(text.contains("$Y > 5"), "{text}");
        assert!(text.contains("getD($K.a, $Y)"), "{text}");
        assert!(!text.contains("$X"), "{text}");
    }

    #[test]
    fn fresh_var_avoids_taken() {
        let taken = vec![Name::new("w0"), Name::new("w1")];
        assert_eq!(fresh_var("w", &taken).as_str(), "w2");
    }

    #[test]
    fn render_shows_nested_plans() {
        let apply = Op::Apply {
            input: Box::new(Op::GroupBy {
                input: Box::new(mk("a", "X")),
                group: vec![Name::new("X")],
                out: Name::new("P"),
            }),
            plan: Box::new(Op::TupleDestroy {
                input: Box::new(Op::NestedSrc {
                    var: Name::new("P"),
                }),
                var: Name::new("X"),
                root: None,
            }),
            param: Some(Name::new("P")),
            out: Name::new("Z"),
        };
        let text = Plan::new(apply).render();
        assert!(text.contains("apply(p, $P -> $Z)"), "{text}");
        assert!(text.contains("| tD($X)"), "{text}");
        assert!(text.contains("|   nSrc($P)"), "{text}");
        assert!(text.contains("gBy([$X] -> $P)"), "{text}");
    }
}
