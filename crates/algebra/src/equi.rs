//! Conjunct extraction for the hash-kernel physical layer.
//!
//! A join/semi-join predicate is a conjunction of comparisons. The
//! physical layer wants the *equality* conjuncts that relate one
//! variable from each input — those become hash keys — separated from
//! whatever is left over (the residual, evaluated per candidate pair).
//! [`split_equi`] performs that split against the variable sets of the
//! two inputs.
//!
//! Two kinds of equality qualify:
//!
//! * `$x = $y` on leaf *values* ([`Cond::Cmp`] with [`CmpOp::Eq`]):
//!   the key is the scalar the engine's pathwalk projects out of the
//!   bound node (its leaf value, or the value of its single text
//!   child);
//! * `$x ≐ $y` on *node identity* ([`Cond::OidCmp`]): the key is the
//!   bound vertex's oid.
//!
//! Anything else — inequalities, constants, oid fixings — stays in the
//! residual and the kernel falls back to nested loops when no pair at
//! all is extractable.

use crate::cond::Cond;
use mix_common::{CmpOp, Name};

/// How the key for one equi-conjunct is computed from a bound node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// The node's projected leaf value (`lval_scalar` — the pathwalk
    /// result `$C/id/data()` style conditions compare).
    Scalar,
    /// The node's identity (oid / group key), the `≐` comparison rule 9
    /// introduces.
    Node,
}

/// One extracted equality: `left` is bound by the left input, `right`
/// by the right input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiPair {
    /// Variable from the left input's schema.
    pub left: Name,
    /// Variable from the right input's schema.
    pub right: Name,
    /// How the key is computed.
    pub kind: KeyKind,
}

/// The result of splitting a predicate: hashable pairs plus the
/// residual conjunction (`None` when every conjunct became a pair).
#[derive(Debug, Clone, PartialEq)]
pub struct EquiSplit {
    /// Equality conjuncts relating the two inputs, in predicate order.
    pub pairs: Vec<EquiPair>,
    /// Conjuncts the hash index cannot cover.
    pub residual: Option<Cond>,
}

impl EquiSplit {
    /// True when at least one hash key was extracted.
    pub fn hashable(&self) -> bool {
        !self.pairs.is_empty()
    }
}

/// Split `cond` into equi-key pairs and a residual, given the variables
/// each join input binds. `None` means an unconditioned (cross) join —
/// nothing to extract.
pub fn split_equi(cond: Option<&Cond>, left_vars: &[Name], right_vars: &[Name]) -> EquiSplit {
    let mut pairs = Vec::new();
    let mut residual: Option<Cond> = None;
    let Some(cond) = cond else {
        return EquiSplit { pairs, residual };
    };
    for conj in cond.conjuncts() {
        let pair = match conj {
            Cond::Cmp {
                l,
                op: CmpOp::Eq,
                r,
            } => match (l.var(), r.var()) {
                (Some(lv), Some(rv)) => orient(lv, rv, KeyKind::Scalar, left_vars, right_vars),
                _ => None,
            },
            Cond::OidCmp { l, r } => orient(l, r, KeyKind::Node, left_vars, right_vars),
            _ => None,
        };
        match pair {
            Some(p) => pairs.push(p),
            None => residual = Cond::and(residual.take(), Some(conj.clone())),
        }
    }
    EquiSplit { pairs, residual }
}

/// Assign the two variables of an equality to the join sides; `None`
/// when both land on the same side (a same-input filter, not a key).
fn orient(
    a: &Name,
    b: &Name,
    kind: KeyKind,
    left_vars: &[Name],
    right_vars: &[Name],
) -> Option<EquiPair> {
    if left_vars.contains(a) && right_vars.contains(b) {
        Some(EquiPair {
            left: a.clone(),
            right: b.clone(),
            kind,
        })
    } else if left_vars.contains(b) && right_vars.contains(a) {
        Some(EquiPair {
            left: b.clone(),
            right: a.clone(),
            kind,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::CondArg;
    use mix_common::Value;

    fn n(s: &str) -> Name {
        Name::new(s)
    }

    #[test]
    fn single_value_equality_becomes_a_pair() {
        let cond = Cond::cmp_vars("a", CmpOp::Eq, "b");
        let s = split_equi(Some(&cond), &[n("a")], &[n("b")]);
        assert!(s.hashable());
        assert_eq!(
            s.pairs,
            vec![EquiPair {
                left: n("a"),
                right: n("b"),
                kind: KeyKind::Scalar
            }]
        );
        assert!(s.residual.is_none());
    }

    #[test]
    fn orientation_is_normalized() {
        // `$b = $a` with `$a` on the left input still maps left→a.
        let cond = Cond::cmp_vars("b", CmpOp::Eq, "a");
        let s = split_equi(Some(&cond), &[n("a")], &[n("b")]);
        assert_eq!(s.pairs[0].left, n("a"));
        assert_eq!(s.pairs[0].right, n("b"));
    }

    #[test]
    fn oid_comparison_is_a_node_pair() {
        let cond = Cond::OidCmp {
            l: n("x"),
            r: n("y"),
        };
        let s = split_equi(Some(&cond), &[n("y")], &[n("x")]);
        assert_eq!(
            s.pairs,
            vec![EquiPair {
                left: n("y"),
                right: n("x"),
                kind: KeyKind::Node
            }]
        );
    }

    #[test]
    fn non_equality_and_constants_stay_residual() {
        for cond in [
            Cond::cmp_vars("a", CmpOp::Lt, "b"),
            Cond::Cmp {
                l: CondArg::Var(n("a")),
                op: CmpOp::Eq,
                r: CondArg::Const(Value::Int(3)),
            },
        ] {
            let s = split_equi(Some(&cond), &[n("a")], &[n("b")]);
            assert!(!s.hashable(), "{cond}");
            assert_eq!(s.residual, Some(cond));
        }
    }

    #[test]
    fn same_side_equality_is_not_a_key() {
        let cond = Cond::cmp_vars("a", CmpOp::Eq, "a2");
        let s = split_equi(Some(&cond), &[n("a"), n("a2")], &[n("b")]);
        assert!(!s.hashable());
    }

    #[test]
    fn conjunction_splits_into_pairs_and_residual() {
        let cond = Cond::And(vec![
            Cond::cmp_vars("a", CmpOp::Eq, "b"),
            Cond::cmp_vars("a2", CmpOp::Lt, "b"),
            Cond::OidCmp {
                l: n("a"),
                r: n("b2"),
            },
        ]);
        let s = split_equi(Some(&cond), &[n("a"), n("a2")], &[n("b"), n("b2")]);
        assert_eq!(s.pairs.len(), 2);
        assert_eq!(s.pairs[0].kind, KeyKind::Scalar);
        assert_eq!(s.pairs[1].kind, KeyKind::Node);
        assert_eq!(s.residual, Some(Cond::cmp_vars("a2", CmpOp::Lt, "b")));
    }

    #[test]
    fn cross_join_has_nothing_to_extract() {
        let s = split_equi(None, &[n("a")], &[n("b")]);
        assert!(!s.hashable());
        assert!(s.residual.is_none());
    }
}
