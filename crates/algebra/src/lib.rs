//! The XMAS algebra (paper Section 3).
//!
//! XMAS is *tuple-oriented*: operators consume and produce sets of
//! *binding lists* — tuples `[$v₁ = val₁, …, $vₖ = valₖ]` — "much in the
//! way that iterator models were built on the relational algebra and
//! enabled the pipelined evaluation of SQL queries". The fourteen
//! operators of the paper are all here:
//!
//! | # | paper | [`Op`] variant |
//! |---|-------|----------------|
//! | 1 | `mksrc_{&srcid,$X}` | [`Op::MkSrc`] |
//! | 2 | `getD_{$A.r→$X}` | [`Op::GetD`] |
//! | 3 | `select_θ` | [`Op::Select`] |
//! | 4 | `π̃_v` (projection, dup-elim) | [`Op::Project`] |
//! | 5 | `join_θ` | [`Op::Join`] |
//! | 6 | `l/rSemijoin_θ` | [`Op::SemiJoin`] |
//! | 7 | `crElt_{l,f(~g),$ch→$name}` | [`Op::CrElt`] |
//! | 8 | `cat_{$x,$y→$z}` | [`Op::Cat`] |
//! | 9 | `tD_{$A[,id]}` (tuple destroy) | [`Op::TupleDestroy`] |
//! | 10 | `groupBy_{gl→$name}` | [`Op::GroupBy`] |
//! | 11 | `apply_{p,$inp→$l}` | [`Op::Apply`] |
//! | 12 | `nestedSrc_{$x}` | [`Op::NestedSrc`] |
//! | 13 | `rQ_{s,q,m}` (relational query) | [`Op::RelQuery`] |
//! | 14 | `orderBy_{[$V…]}` | [`Op::OrderBy`] |
//!
//! plus [`Op::Empty`], the ⊥ plan rewrite rule 4 produces for
//! unsatisfiable paths.
//!
//! The crate also provides the Section 3 translation from the XQuery
//! subset into plans ([`translate()`]), plan validation (variable scoping
//! and join-disjointness), and the paper-figure-style pretty printer.

pub mod builder;
pub mod cond;
pub mod equi;
pub mod op;
pub mod plan;
pub mod translate;
pub mod validate;

pub use builder::{xmas, PlanBuilder};
pub use cond::{Cond, CondArg};
pub use equi::{split_equi, EquiPair, EquiSplit, KeyKind};
pub use op::{CatArg, ChildSpec, Op, RqBinding, RqKind, Side};
pub use plan::Plan;
pub use translate::{translate, translate_with_root};
pub use validate::validate;
