//! A fluent builder for XMAS plans.
//!
//! The translator covers queries written in the XQuery subset; tests,
//! tools and downstream users sometimes want to assemble plans
//! directly (e.g. to use operators the surface language does not
//! reach, like `orderBy` or explicit semijoins). The builder keeps
//! that terse while staying honest: [`PlanBuilder::tuple_destroy`] validates the
//! result.
//!
//! ```
//! use mix_algebra::builder::xmas;
//! use mix_common::CmpOp;
//!
//! let plan = xmas()
//!     .mksrc("root2", "J")
//!     .get("J", "order", "O")
//!     .get("O", "order.value.data()", "V")
//!     .select_cmp("V", CmpOp::Gt, 2000)
//!     .tuple_destroy("O", Some("rootv"))
//!     .expect("valid plan");
//! assert!(plan.render().contains("select($V > 2000)"));
//! ```

use crate::cond::Cond;
use crate::op::{CatArg, ChildSpec, Op, Side};
use crate::plan::Plan;
use crate::validate::validate;
use mix_common::{CmpOp, Name, Result, Value};
use mix_xml::LabelPath;

/// Start building from a source scan.
pub fn xmas() -> PlanBuilder {
    PlanBuilder { op: None }
}

/// A plan under construction. Operators stack bottom-up.
pub struct PlanBuilder {
    op: Option<Op>,
}

impl PlanBuilder {
    fn push(mut self, f: impl FnOnce(Box<Op>) -> Op) -> PlanBuilder {
        let inner = self.op.take().expect("a source operator must come first");
        self.op = Some(f(Box::new(inner)));
        self
    }

    /// `mksrc(source, $var)` — must be the first operator (or a join
    /// input).
    pub fn mksrc(mut self, source: &str, var: &str) -> PlanBuilder {
        assert!(self.op.is_none(), "mksrc starts a pipeline");
        self.op = Some(Op::MkSrc {
            source: Name::new(source),
            var: Name::new(var),
        });
        self
    }

    /// `getD($from.path, $to)`; the path is dot-separated and parsed.
    pub fn get(self, from: &str, path: &str, to: &str) -> PlanBuilder {
        let path = LabelPath::parse(path).expect("valid getD path");
        let (from, to) = (Name::new(from), Name::new(to));
        self.push(|input| Op::GetD {
            input,
            from,
            path,
            to,
        })
    }

    /// `select($var op const)`.
    pub fn select_cmp(self, var: &str, op: CmpOp, c: impl Into<Value>) -> PlanBuilder {
        let cond = Cond::cmp_const(var, op, c);
        self.push(|input| Op::Select { input, cond })
    }

    /// `select` with an arbitrary condition.
    pub fn select(self, cond: Cond) -> PlanBuilder {
        self.push(|input| Op::Select { input, cond })
    }

    /// `π̃(vars…)`.
    pub fn project(self, vars: &[&str]) -> PlanBuilder {
        let vars = vars.iter().map(Name::new).collect();
        self.push(|input| Op::Project { input, vars })
    }

    /// `join_θ(self, right)`; `cond = None` is a cartesian product.
    pub fn join(self, right: PlanBuilder, cond: Option<Cond>) -> PlanBuilder {
        let r = right.op.expect("right side has operators");
        self.push(|left| Op::Join {
            left,
            right: Box::new(r),
            cond,
        })
    }

    /// Semijoin keeping this (left) side: `rightSemijoin`.
    pub fn semijoin_keep_self(self, other: PlanBuilder, cond: Option<Cond>) -> PlanBuilder {
        let r = other.op.expect("filter side has operators");
        self.push(|left| Op::SemiJoin {
            left,
            right: Box::new(r),
            cond,
            keep: Side::Left,
        })
    }

    /// `crElt(label, skolem(group…), children → $out)`.
    pub fn crelt(
        self,
        label: &str,
        skolem: &str,
        group: &[&str],
        children: ChildSpec,
        out: &str,
    ) -> PlanBuilder {
        let (label, skolem, out) = (Name::new(label), Name::new(skolem), Name::new(out));
        let group = group.iter().map(Name::new).collect();
        self.push(|input| Op::CrElt {
            input,
            label,
            skolem,
            group,
            children,
            tag: out.clone(),
            out,
        })
    }

    /// `cat(l, r → $out)`.
    pub fn cat(self, left: CatArg, right: CatArg, out: &str) -> PlanBuilder {
        let out = Name::new(out);
        self.push(|input| Op::Cat {
            input,
            left,
            right,
            out,
        })
    }

    /// `gBy([group…] → $out)`.
    pub fn group_by(self, group: &[&str], out: &str) -> PlanBuilder {
        let group = group.iter().map(Name::new).collect();
        let out = Name::new(out);
        self.push(|input| Op::GroupBy { input, group, out })
    }

    /// `apply` with the standard collection plan `tD($collect)` over
    /// `nestedSrc($partition)`.
    pub fn collect(self, partition: &str, collect: &str, out: &str) -> PlanBuilder {
        let part = Name::new(partition);
        let plan = Op::TupleDestroy {
            input: Box::new(Op::NestedSrc { var: part.clone() }),
            var: Name::new(collect),
            root: None,
        };
        let out = Name::new(out);
        self.push(|input| Op::Apply {
            input,
            plan: Box::new(plan),
            param: Some(part),
            out,
        })
    }

    /// `orderBy([$vars…])`.
    pub fn order_by(self, vars: &[&str]) -> PlanBuilder {
        let vars = vars.iter().map(Name::new).collect();
        self.push(|input| Op::OrderBy { input, vars })
    }

    /// Finish with `tD($var[, root])` and validate.
    pub fn tuple_destroy(self, var: &str, root: Option<&str>) -> Result<Plan> {
        let var = Name::new(var);
        let root = root.map(Name::new);
        let built = self.push(|input| Op::TupleDestroy { input, var, root });
        let plan = Plan::new(built.op.expect("operators present"));
        validate(&plan)?;
        Ok(plan)
    }

    /// The raw operator tree without a `tD` (for splicing into other
    /// plans); not validated.
    pub fn into_op(self) -> Op {
        self.op.expect("operators present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_fig6_shape() {
        let customers = xmas().mksrc("root1", "K").get("K", "customer", "C").get(
            "C",
            "customer.id.data()",
            "1",
        );
        let orders =
            xmas()
                .mksrc("root2", "J")
                .get("J", "order", "O")
                .get("O", "order.cid.data()", "2");
        let plan = customers
            .join(orders, Some(Cond::cmp_vars("1", CmpOp::Eq, "2")))
            .crelt(
                "OrderInfo",
                "g",
                &["O"],
                ChildSpec::Single(Name::new("O")),
                "P",
            )
            .group_by(&["C"], "X")
            .collect("X", "P", "Z")
            .cat(
                CatArg::Single(Name::new("C")),
                CatArg::ListVar(Name::new("Z")),
                "W",
            )
            .crelt(
                "CustRec",
                "f",
                &["C"],
                ChildSpec::ListVar(Name::new("W")),
                "V",
            )
            .tuple_destroy("V", Some("rootv"))
            .unwrap();
        let text = plan.render();
        assert!(text.contains("crElt(CustRec, f($C), $W -> $V)"), "{text}");
        assert!(text.contains("gBy([$C] -> $X)"), "{text}");
        assert!(text.contains("join($1 = $2)"), "{text}");
    }

    #[test]
    fn validation_failures_surface() {
        let bad = xmas()
            .mksrc("root1", "K")
            .get("K", "customer", "C")
            .tuple_destroy("Nope", None);
        assert!(bad.is_err());
    }

    #[test]
    fn semijoin_and_order_by() {
        let big = xmas()
            .mksrc("root2", "J")
            .get("J", "order", "O")
            .get("O", "order.value.data()", "V")
            .select_cmp("V", CmpOp::Gt, 100_000)
            .get("O", "order.cid.data()", "2");
        let plan = xmas()
            .mksrc("root1", "K")
            .get("K", "customer", "C")
            .get("C", "customer.id.data()", "1")
            .semijoin_keep_self(big, Some(Cond::cmp_vars("1", CmpOp::Eq, "2")))
            .order_by(&["C"])
            .project(&["C"])
            .tuple_destroy("C", Some("rootv"))
            .unwrap();
        assert!(
            plan.render().contains("Rsemijoin($1 = $2)"),
            "{}",
            plan.render()
        );
    }
}
