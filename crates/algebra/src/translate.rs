//! XQuery → XMAS translation (paper Section 3).
//!
//! The three clauses translate separately and compose:
//!
//! 1. **FOR** — `document("src")/path` becomes
//!    `getD_{$s.path,$v}(mksrc_{src,$s})`; `$r/path` wraps the
//!    expression that binds `$r` with a `getD` whose path is prefixed
//!    with `$r`'s (statically known) element label — exactly how Fig. 6
//!    derives `getD($K.customer, $C)` and Fig. 11 derives
//!    `getD($R.custRec.orderInfo, $S)`.
//! 2. **WHERE** — path operands get fresh condition variables bound by
//!    `getD` (the `$1`, `$2`, `$3` of the figures); conditions whose
//!    variables live in one expression become `select`s, conditions
//!    spanning two become `join`s; leftover expressions combine with a
//!    cartesian product.
//! 3. **RETURN** — each element creation is a `crElt`, subelement
//!    concatenation is a `cat` chain, group-by lists become
//!    `gBy` + `apply(tD ∘ nestedSrc)` collection, and the whole plan is
//!    capped by `tD($V, rootv)`.
//!
//! Nested FOR/WHERE/RETURN subqueries are *unnested* into the outer
//! clauses first (the paper's own running example Q1 is the unnested
//! form of the natural nested query; both produce the Fig. 6 plan).
//! Like Fig. 6, inner grouped elements are built per-tuple with
//! skolem-deduplicated ids rather than via nested `gBy` — set semantics
//! make the two equivalent for the supported subset.

use crate::cond::{Cond, CondArg};
use crate::op::{CatArg, ChildSpec, Op};
use crate::plan::Plan;
use mix_common::{MixError, Name, Result};
use mix_xml::{LabelPath, Step};
use mix_xquery::{Condition, Element, ForBinding, Item, Operand, PathBase, Query, ReturnExpr};
use std::collections::HashMap;

/// Translate a query; the result tree root is named `rootv`.
pub fn translate(q: &Query) -> Result<Plan> {
    translate_with_root(q, "rootv")
}

/// Translate a query naming the result root `root_name`.
pub fn translate_with_root(q: &Query, root_name: &str) -> Result<Plan> {
    let q = normalize(q);
    let mut t = Translator::new(&q);
    t.translate(&q, root_name)
}

/// The special source name that `document(root)` (a query-in-place)
/// maps to; composition/decontextualization replaces `mksrc` operators
/// on this source.
pub const QUERY_ROOT: &str = "root";

// ---------------------------------------------------------------------
// Normalization: unnest subqueries.
// ---------------------------------------------------------------------

fn normalize(q: &Query) -> Query {
    let mut q = q.clone();
    if let ReturnExpr::Elem(e) = &mut q.ret {
        let mut extra_for = Vec::new();
        let mut extra_where = Vec::new();
        unnest_element(e, &mut extra_for, &mut extra_where);
        q.for_clause.extend(extra_for);
        q.where_clause.extend(extra_where);
    }
    q
}

fn unnest_element(
    e: &mut Element,
    extra_for: &mut Vec<ForBinding>,
    extra_where: &mut Vec<Condition>,
) {
    for item in &mut e.children {
        match item {
            Item::Var(_) => {}
            Item::Elem(inner) => unnest_element(inner, extra_for, extra_where),
            Item::SubQuery(sub) => {
                let sub = normalize(sub);
                extra_for.extend(sub.for_clause.iter().cloned());
                extra_where.extend(sub.where_clause.iter().cloned());
                *item = match sub.ret {
                    ReturnExpr::Var(v) => Item::Var(v),
                    ReturnExpr::Elem(inner) => Item::Elem(inner),
                };
                if let Item::Elem(inner) = item {
                    unnest_element(inner, extra_for, extra_where);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The translator.
// ---------------------------------------------------------------------

/// One FOR/WHERE expression under construction.
struct Expr {
    op: Op,
    vars: Vec<Name>,
}

struct Translator {
    /// Every name already in use (user variables + generated ones).
    taken: Vec<Name>,
    /// Known element label of each variable (for prefixing relative
    /// paths).
    label_of: HashMap<Name, Option<Name>>,
    skolem_counter: usize,
}

/// Variable name pools echoing the paper's figures.
const SRC_POOL: &[&str] = &["K", "J", "M", "A", "B", "D", "E"];
const CAT_POOL: &[&str] = &["W", "W1", "W2", "W3"];
const TOP_ELT_POOL: &[&str] = &["V", "V1", "V2", "V3"];
const INNER_ELT_POOL: &[&str] = &["P", "P1", "P2", "P3"];
const GRP_POOL: &[&str] = &["X", "X1", "X2"];
const APP_POOL: &[&str] = &["Z", "Z1", "Z2"];
const SKOLEM_POOL: &[&str] = &["f", "g", "h", "k", "f1", "g1", "h1", "k1"];

impl Translator {
    fn new(q: &Query) -> Translator {
        let mut taken: Vec<Name> = q.bound_vars();
        // Also reserve variables referenced in WHERE/RETURN (they must
        // be FOR-bound anyway, but reserving is harmless).
        for c in &q.where_clause {
            for o in [&c.lhs, &c.rhs] {
                if let Operand::Path { var, .. } = o {
                    taken.push(var.clone());
                }
            }
        }
        Translator {
            taken,
            label_of: HashMap::new(),
            skolem_counter: 0,
        }
    }

    fn fresh(&mut self, pool: &[&str], fallback: &str) -> Name {
        for cand in pool {
            let n = Name::new(*cand);
            if !self.taken.contains(&n) {
                self.taken.push(n.clone());
                return n;
            }
        }
        let n = crate::plan::fresh_var(fallback, &self.taken);
        self.taken.push(n.clone());
        n
    }

    /// Numeric condition variables `$1`, `$2`, … like the figures.
    fn fresh_numeric(&mut self) -> Name {
        for i in 1.. {
            let n = Name::new(i.to_string());
            if !self.taken.contains(&n) {
                self.taken.push(n.clone());
                return n;
            }
        }
        unreachable!()
    }

    fn fresh_skolem(&mut self) -> Name {
        let n = if self.skolem_counter < SKOLEM_POOL.len() {
            Name::new(SKOLEM_POOL[self.skolem_counter])
        } else {
            Name::new(format!("sk{}", self.skolem_counter))
        };
        self.skolem_counter += 1;
        n
    }

    fn translate(&mut self, q: &Query, root_name: &str) -> Result<Plan> {
        if q.for_clause.is_empty() {
            return Err(MixError::invalid("query has no FOR clause"));
        }
        let mut exprs: Vec<Expr> = Vec::new();

        // --- FOR clause ---
        for b in &q.for_clause {
            self.add_for_binding(b, &mut exprs)?;
        }

        // --- WHERE clause: bind operand paths, then apply conditions ---
        let mut conds = Vec::new();
        for c in &q.where_clause {
            let l = self.bind_operand(&c.lhs, &mut exprs)?;
            let r = self.bind_operand(&c.rhs, &mut exprs)?;
            conds.push(Cond::Cmp { l, op: c.op, r });
        }
        for cond in conds {
            self.apply_condition(cond, &mut exprs)?;
        }

        // --- combine leftovers with cartesian products ---
        let mut iter = exprs.into_iter();
        let mut current = iter.next().expect("at least one FOR binding");
        for next in iter {
            current = Expr {
                vars: current.vars.iter().chain(&next.vars).cloned().collect(),
                op: Op::Join {
                    left: Box::new(current.op),
                    right: Box::new(next.op),
                    cond: None,
                },
            };
        }

        // --- RETURN clause ---
        let root = match &q.ret {
            ReturnExpr::Var(v) => {
                if !current.vars.contains(v) {
                    return Err(MixError::invalid(format!(
                        "RETURN references unbound {}",
                        v.display_var()
                    )));
                }
                Op::TupleDestroy {
                    input: Box::new(current.op),
                    var: v.clone(),
                    root: Some(Name::new(root_name)),
                }
            }
            ReturnExpr::Elem(e) => {
                let skolem = self.fresh_skolem();
                let (op, out) = self.build_element(e, current.op, &current.vars, skolem)?;
                Op::TupleDestroy {
                    input: Box::new(op),
                    var: out,
                    root: Some(Name::new(root_name)),
                }
            }
        };
        Ok(Plan::new(root))
    }

    fn add_for_binding(&mut self, b: &ForBinding, exprs: &mut Vec<Expr>) -> Result<()> {
        match &b.base {
            PathBase::Document(_) | PathBase::QueryRoot => {
                let src = match &b.base {
                    PathBase::Document(s) => s.clone(),
                    PathBase::QueryRoot => Name::new(QUERY_ROOT),
                    PathBase::Var(_) => unreachable!(),
                };
                let s = self.fresh(SRC_POOL, "s");
                let mksrc = Op::MkSrc {
                    source: src,
                    var: s.clone(),
                };
                if b.steps.is_empty() {
                    // `document(r)` with no steps: the variable *is* the
                    // per-child binding.
                    self.label_of.insert(b.var.clone(), None);
                    // rename s -> var
                    let op = crate::plan::rename_var(&mksrc, &s, &b.var);
                    exprs.push(Expr {
                        op,
                        vars: vec![b.var.clone()],
                    });
                } else {
                    let path = LabelPath::new(b.steps.clone())?;
                    self.label_of.insert(b.var.clone(), last_label(&path));
                    exprs.push(Expr {
                        op: Op::GetD {
                            input: Box::new(mksrc),
                            from: s.clone(),
                            path,
                            to: b.var.clone(),
                        },
                        vars: vec![s, b.var.clone()],
                    });
                }
                Ok(())
            }
            PathBase::Var(r) => {
                let idx = exprs
                    .iter()
                    .position(|e| e.vars.contains(r))
                    .ok_or_else(|| {
                        MixError::invalid(format!(
                            "FOR binding uses unbound variable {}",
                            r.display_var()
                        ))
                    })?;
                let path = self.relative_path(r, &b.steps)?;
                self.label_of.insert(b.var.clone(), last_label(&path));
                let e = &mut exprs[idx];
                e.op = Op::GetD {
                    input: Box::new(std::mem::replace(&mut e.op, Op::Empty { vars: vec![] })),
                    from: r.clone(),
                    path,
                    to: b.var.clone(),
                };
                e.vars.push(b.var.clone());
                Ok(())
            }
        }
    }

    /// A path relative to `$r`, prefixed with `$r`'s own label (the
    /// paper's convention that paths include the start node's label).
    /// When the label is statically unknown, a wildcard step stands in.
    fn relative_path(&self, r: &Name, steps: &[Step]) -> Result<LabelPath> {
        let first = match self.label_of.get(r) {
            Some(Some(l)) => Step::Label(l.clone()),
            _ => Step::Wild,
        };
        let mut all = vec![first];
        all.extend(steps.iter().cloned());
        LabelPath::new(all)
    }

    fn bind_operand(&mut self, o: &Operand, exprs: &mut [Expr]) -> Result<CondArg> {
        match o {
            Operand::Const(v) => Ok(CondArg::Const(v.clone())),
            Operand::Path { var, steps } if steps.is_empty() => {
                if !exprs.iter().any(|e| e.vars.contains(var)) {
                    return Err(MixError::invalid(format!(
                        "WHERE references unbound {}",
                        var.display_var()
                    )));
                }
                Ok(CondArg::Var(var.clone()))
            }
            Operand::Path { var, steps } => {
                let idx = exprs
                    .iter()
                    .position(|e| e.vars.contains(var))
                    .ok_or_else(|| {
                        MixError::invalid(format!("WHERE references unbound {}", var.display_var()))
                    })?;
                let path = self.relative_path(var, steps)?;
                let c = self.fresh_numeric();
                let e = &mut exprs[idx];
                e.op = Op::GetD {
                    input: Box::new(std::mem::replace(&mut e.op, Op::Empty { vars: vec![] })),
                    from: var.clone(),
                    path,
                    to: c.clone(),
                };
                e.vars.push(c.clone());
                Ok(CondArg::Var(c))
            }
        }
    }

    fn apply_condition(&mut self, cond: Cond, exprs: &mut Vec<Expr>) -> Result<()> {
        let vars = cond.vars();
        let mut touching: Vec<usize> = exprs
            .iter()
            .enumerate()
            .filter(|(_, e)| vars.iter().any(|v| e.vars.contains(v)))
            .map(|(i, _)| i)
            .collect();
        match touching.len() {
            0 => Err(MixError::internal("condition touches no expression")),
            1 => {
                let e = &mut exprs[touching[0]];
                e.op = Op::Select {
                    input: Box::new(std::mem::replace(&mut e.op, Op::Empty { vars: vec![] })),
                    cond,
                };
                Ok(())
            }
            2 => {
                // Join the two expressions on this condition.
                touching.sort_unstable();
                let right = exprs.remove(touching[1]);
                let left = exprs.remove(touching[0]);
                exprs.insert(
                    touching[0],
                    Expr {
                        vars: left.vars.iter().chain(&right.vars).cloned().collect(),
                        op: Op::Join {
                            left: Box::new(left.op),
                            right: Box::new(right.op),
                            cond: Some(cond),
                        },
                    },
                );
                Ok(())
            }
            _ => Err(MixError::internal(
                "binary condition touches >2 expressions",
            )),
        }
    }

    /// Build the `crElt`/`cat`/`gBy`/`apply` pipeline for one RETURN
    /// element. Returns the extended plan and the variable bound to the
    /// constructed element.
    fn build_element(
        &mut self,
        e: &Element,
        mut op: Op,
        in_vars: &[Name],
        skolem: Name,
    ) -> Result<(Op, Name)> {
        if e.children.is_empty() {
            return Err(MixError::invalid(format!(
                "element <{}> has no content (grammar requires at least one item)",
                e.label
            )));
        }
        for g in &e.group_by {
            if !in_vars.contains(g) {
                return Err(MixError::invalid(format!(
                    "group-by variable {} is not bound",
                    g.display_var()
                )));
            }
        }
        struct Entry {
            arg: CatArg,
            depends: Vec<Name>,
        }
        let mut entries = Vec::new();
        let mut vars = in_vars.to_vec();
        for item in &e.children {
            match item {
                Item::Var(v) => {
                    if !vars.contains(v) {
                        return Err(MixError::invalid(format!(
                            "element content references unbound {}",
                            v.display_var()
                        )));
                    }
                    entries.push(Entry {
                        arg: CatArg::Single(v.clone()),
                        depends: vec![v.clone()],
                    });
                }
                Item::Elem(inner) => {
                    let inner_skolem = self.fresh_skolem();
                    // Inner elements are built per tuple (Fig. 6's
                    // crElt(OrderInfo, g($O), …) sits below the gBy).
                    let deps = content_vars(inner);
                    let (new_op, out) = self.build_inner_element(inner, op, &vars, inner_skolem)?;
                    op = new_op;
                    vars.push(out.clone());
                    entries.push(Entry {
                        arg: CatArg::Single(out),
                        depends: deps,
                    });
                }
                Item::SubQuery(_) => {
                    return Err(MixError::internal(
                        "subqueries must be unnested before element construction",
                    ))
                }
            }
        }

        if e.group_by.is_empty() {
            let children = self.cat_chain(&mut op, entries.into_iter().map(|e| e.arg))?;
            let group: Vec<Name> = Vec::new();
            let out = self.fresh(TOP_ELT_POOL, "V");
            let op = Op::CrElt {
                input: Box::new(op),
                label: e.label.clone(),
                skolem,
                group,
                children,
                tag: out.clone(),
                out: out.clone(),
            };
            return Ok((op, out));
        }

        // Grouped element: gBy on the group list, collect varying
        // entries via apply(tD ∘ nestedSrc).
        let part = self.fresh(GRP_POOL, "X");
        op = Op::GroupBy {
            input: Box::new(op),
            group: e.group_by.clone(),
            out: part.clone(),
        };
        let mut final_args = Vec::new();
        for entry in entries {
            let invariant =
                !entry.depends.is_empty() && entry.depends.iter().all(|v| e.group_by.contains(v));
            if invariant {
                final_args.push(entry.arg);
            } else {
                // Collect this entry's per-tuple values into a list.
                let collected = self.fresh(APP_POOL, "Z");
                let inner_var = entry.arg.var().clone();
                op = Op::Apply {
                    input: Box::new(op),
                    plan: Box::new(Op::TupleDestroy {
                        input: Box::new(Op::NestedSrc { var: part.clone() }),
                        var: inner_var,
                        root: None,
                    }),
                    param: Some(part.clone()),
                    out: collected.clone(),
                };
                final_args.push(CatArg::ListVar(collected));
            }
        }
        let children = self.cat_chain(&mut op, final_args.into_iter())?;
        let out = self.fresh(TOP_ELT_POOL, "V");
        let op = Op::CrElt {
            input: Box::new(op),
            label: e.label.clone(),
            skolem,
            group: e.group_by.clone(),
            children,
            tag: out.clone(),
            out: out.clone(),
        };
        Ok((op, out))
    }

    /// Build a non-top-level element per tuple (no grouping machinery;
    /// grouped inner elements rely on skolem-id set semantics, matching
    /// Fig. 6).
    fn build_inner_element(
        &mut self,
        e: &Element,
        mut op: Op,
        in_vars: &[Name],
        skolem: Name,
    ) -> Result<(Op, Name)> {
        if e.children.is_empty() {
            return Err(MixError::invalid(format!(
                "element <{}> has no content",
                e.label
            )));
        }
        let mut args = Vec::new();
        let mut vars = in_vars.to_vec();
        for item in &e.children {
            match item {
                Item::Var(v) => {
                    if !vars.contains(v) {
                        return Err(MixError::invalid(format!(
                            "element content references unbound {}",
                            v.display_var()
                        )));
                    }
                    args.push(CatArg::Single(v.clone()));
                }
                Item::Elem(inner) => {
                    let inner_skolem = self.fresh_skolem();
                    let (new_op, out) = self.build_inner_element(inner, op, &vars, inner_skolem)?;
                    op = new_op;
                    vars.push(out.clone());
                    args.push(CatArg::Single(out));
                }
                Item::SubQuery(_) => {
                    return Err(MixError::internal("subqueries must be unnested first"))
                }
            }
        }
        let children = self.cat_chain(&mut op, args.into_iter())?;
        // The skolem arguments: the element's group-by list when given
        // (Fig. 6's g($O) for OrderInfo{$O}), else its content vars.
        let group = if e.group_by.is_empty() {
            content_vars(e)
        } else {
            e.group_by.clone()
        };
        let out = self.fresh(INNER_ELT_POOL, "P");
        let op = Op::CrElt {
            input: Box::new(op),
            label: e.label.clone(),
            skolem,
            group,
            children,
            tag: out.clone(),
            out: out.clone(),
        };
        Ok((op, out))
    }

    /// Chain `cat` operators over the arguments, in order. A single
    /// argument is passed through unchanged (crElt accepts both forms).
    fn cat_chain(&mut self, op: &mut Op, args: impl Iterator<Item = CatArg>) -> Result<ChildSpec> {
        let mut args: Vec<CatArg> = args.collect();
        if args.is_empty() {
            return Err(MixError::internal("cat chain over zero arguments"));
        }
        if args.len() == 1 {
            return Ok(args.pop().unwrap());
        }
        let mut acc = args.remove(0);
        for next in args {
            let w = self.fresh(CAT_POOL, "W");
            *op = Op::Cat {
                input: Box::new(std::mem::replace(op, Op::Empty { vars: vec![] })),
                left: acc,
                right: next,
                out: w.clone(),
            };
            acc = CatArg::ListVar(w);
        }
        Ok(acc)
    }
}

fn last_label(path: &LabelPath) -> Option<Name> {
    match path.steps().last() {
        Some(Step::Label(l)) => Some(l.clone()),
        _ => None,
    }
}

/// The FOR-bound variables an element's content references.
fn content_vars(e: &Element) -> Vec<Name> {
    let mut out = Vec::new();
    fn walk(e: &Element, out: &mut Vec<Name>) {
        for item in &e.children {
            match item {
                Item::Var(v) => {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
                Item::Elem(inner) => walk(inner, out),
                Item::SubQuery(q) => {
                    // after normalization this cannot occur; be safe
                    if let ReturnExpr::Elem(inner) = &q.ret {
                        walk(inner, out);
                    }
                }
            }
        }
    }
    walk(e, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use mix_xquery::parse_query;

    const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

    #[test]
    fn q1_translates_to_fig6_shape() {
        let q = parse_query(Q1).unwrap();
        let plan = translate(&q).unwrap();
        let text = plan.render();
        // Top of the plan: tD($V, rootv) over crElt(CustRec, f($C), …).
        assert!(text.starts_with("tD($V, rootv)\n"), "{text}");
        assert!(text.contains("crElt(CustRec, f($C), $W -> $V)"), "{text}");
        // The children: cat(list($C), $Z -> $W) — $C then the collected
        // OrderInfo list.
        assert!(text.contains("cat(list($C), $Z -> $W)"), "{text}");
        // The collection: apply over gBy($C).
        assert!(text.contains("apply(p, $X -> $Z)"), "{text}");
        assert!(text.contains("| tD($P)"), "{text}");
        assert!(text.contains("|   nSrc($X)"), "{text}");
        assert!(text.contains("gBy([$C] -> $X)"), "{text}");
        // Per-tuple OrderInfo elements below the group-by.
        assert!(
            text.contains("crElt(OrderInfo, g($O), list($O) -> $P)"),
            "{text}"
        );
        // The join over the two source branches with the condition vars.
        assert!(text.contains("join($1 = $2)"), "{text}");
        assert!(text.contains("getD($C.customer.id.data(), $1)"), "{text}");
        assert!(text.contains("getD($O.order.cid.data(), $2)"), "{text}");
        assert!(text.contains("getD($K.customer, $C)"), "{text}");
        assert!(text.contains("getD($J.order, $O)"), "{text}");
        assert!(text.contains("mksrc(root1, $K)"), "{text}");
        assert!(text.contains("mksrc(root2, $J)"), "{text}");
        validate(&plan).unwrap();
    }

    #[test]
    fn q2_translates_with_query_root() {
        let q = parse_query(
            "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"B\" RETURN $P",
        )
        .unwrap();
        let plan = translate(&q).unwrap();
        let text = plan.render();
        assert!(text.contains("mksrc(root, $K)"), "{text}");
        assert!(text.contains("getD($K.CustRec, $P)"), "{text}");
        assert!(
            text.contains("getD($P.CustRec.customer.name, $1)"),
            "{text}"
        );
        assert!(text.contains("select($1 < \"B\")"), "{text}");
        assert!(text.starts_with("tD($P, rootv)"), "{text}");
        validate(&plan).unwrap();
    }

    #[test]
    fn fig12_plan_matches_fig11() {
        let q = parse_query(
            "FOR $R in document(rootv)/CustRec $S in $R/OrderInfo \
             WHERE $S/order/value > 20000 RETURN $R",
        )
        .unwrap();
        let plan = translate(&q).unwrap();
        let text = plan.render();
        assert!(text.contains("mksrc(rootv, $K)"), "{text}");
        assert!(text.contains("getD($K.CustRec, $R)"), "{text}");
        // $S IN $R/OrderInfo gets $R's label prefixed (Fig. 11).
        assert!(text.contains("getD($R.CustRec.OrderInfo, $S)"), "{text}");
        assert!(
            text.contains("getD($S.OrderInfo.order.value, $1)"),
            "{text}"
        );
        assert!(text.contains("select($1 > 20000)"), "{text}");
        validate(&plan).unwrap();
    }

    #[test]
    fn unconnected_fors_become_cartesian() {
        let q = parse_query(
            "FOR $A IN document(r1)/x $B IN document(r2)/y RETURN <pair> $A $B </pair>",
        )
        .unwrap();
        let plan = translate(&q).unwrap();
        let text = plan.render();
        assert!(text.contains("join(×)"), "{text}");
        assert!(text.contains("cat(list($A), list($B) -> $W)"), "{text}");
        validate(&plan).unwrap();
    }

    #[test]
    fn nested_subquery_unnests_like_q1() {
        let nested = "FOR $C IN source(&root1)/customer \
             RETURN <CustRec> $C \
               FOR $O IN document(&root2)/order \
               WHERE $C/id/data() = $O/cid/data() \
               RETURN <OrderInfo> $O </OrderInfo> {$O} \
             </CustRec> {$C}";
        let flat = translate(&parse_query(Q1).unwrap()).unwrap();
        let unnested = translate(&parse_query(nested).unwrap()).unwrap();
        assert_eq!(flat.render(), unnested.render());
    }

    #[test]
    fn errors_on_unbound_variables() {
        for bad in [
            "FOR $C IN document(r)/c WHERE $D/x = 1 RETURN $C",
            "FOR $C IN document(r)/c RETURN $D",
            "FOR $C IN document(r)/c RETURN <a> $D </a>",
            "FOR $C IN document(r)/c RETURN <a> $C </a> {$D}",
            "FOR $S IN $R/x RETURN $S",
        ] {
            let q = parse_query(bad).unwrap();
            assert!(translate(&q).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn bare_variable_condition_is_select() {
        let q = parse_query("FOR $C IN document(r)/c/name/data() WHERE $C = \"Ann\" RETURN $C")
            .unwrap();
        let plan = translate(&q).unwrap();
        let text = plan.render();
        assert!(text.contains("select($C = \"Ann\")"), "{text}");
        assert!(text.contains("getD($K.c.name.data(), $C)"), "{text}");
    }

    #[test]
    fn multi_var_group_by() {
        let q = parse_query(
            "FOR $A IN document(r)/x $B IN $A/y \
             RETURN <g> $A $B </g> {$A, $B}",
        )
        .unwrap();
        let plan = translate(&q).unwrap();
        let text = plan.render();
        assert!(text.contains("gBy([$A,$B] -> $X)"), "{text}");
        // Both children are group-invariant: no apply is needed.
        assert!(!text.contains("apply"), "{text}");
        assert!(text.contains("crElt(g, f($A,$B), $W -> $V)"), "{text}");
        validate(&plan).unwrap();
    }
}
