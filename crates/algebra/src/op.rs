//! The XMAS operators.

use crate::cond::Cond;
use mix_common::Name;
use mix_relational::SelectStmt;
use mix_xml::LabelPath;
use std::fmt;

/// Which input's variables a semijoin keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// `rightSemijoin(I₁,I₂) = π_{V₁}(join(I₁,I₂))` — keep the *left*
    /// input's variables.
    Left,
    /// `leftSemijoin(I₁,I₂) = π_{V₂}(join(I₁,I₂))` — keep the *right*
    /// input's variables (the `Lsemijoin` of Figs. 20–21).
    Right,
}

/// The children specification of `crElt`: `$ch` (already a list) or
/// `list($ch)` (a single element wrapped into a singleton list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChildSpec {
    /// `$ch` holds the list of children.
    ListVar(Name),
    /// `list($ch)`: `$ch` holds one element.
    Single(Name),
}

impl ChildSpec {
    /// The underlying variable.
    pub fn var(&self) -> &Name {
        match self {
            ChildSpec::ListVar(v) | ChildSpec::Single(v) => v,
        }
    }
}

impl fmt::Display for ChildSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChildSpec::ListVar(v) => write!(f, "{}", v.display_var()),
            ChildSpec::Single(v) => write!(f, "list({})", v.display_var()),
        }
    }
}

/// One argument of `cat`: a list variable or `list($x)`.
pub type CatArg = ChildSpec;

/// How one output variable of `rQ` is assembled from result columns.
#[derive(Debug, Clone, PartialEq)]
pub enum RqKind {
    /// Rebuild a wrapper tuple element: label `element`, one field per
    /// `(column name, result position)`, oid from the `key` positions.
    Element {
        element: Name,
        cols: Vec<(Name, usize)>,
        key: Vec<usize>,
    },
    /// Bind the leaf value at one result position.
    Value { col: usize },
    /// Rebuild a single *field element* `<col>value</col>` of FROM
    /// entry whose tuple key sits at the `key` positions. This is what
    /// a variable bound to an element-valued path (`$B IN $A/col`,
    /// no `data()` step) ships as — the element, not its text value.
    FieldElement {
        element: Name,
        col: usize,
        key: Vec<usize>,
    },
}

/// One entry of the `rQ` map parameter `m`, "the mapping between the
/// variables in the binding lists output by the operator, and the
/// attribute positions in the result of the SQL query".
#[derive(Debug, Clone, PartialEq)]
pub struct RqBinding {
    pub var: Name,
    pub kind: RqKind,
}

impl fmt::Display for RqBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            RqKind::Element { cols, .. } => {
                let positions: Vec<String> =
                    cols.iter().map(|(_, p)| (p + 1).to_string()).collect();
                write!(
                    f,
                    "{} = {{{}}}",
                    self.var.display_var(),
                    positions.join(",")
                )
            }
            RqKind::Value { col } => {
                write!(f, "{} = {{{}}}", self.var.display_var(), col + 1)
            }
            RqKind::FieldElement { element, col, .. } => {
                write!(
                    f,
                    "{} = {{{}:{}}}",
                    self.var.display_var(),
                    col + 1,
                    element
                )
            }
        }
    }
}

/// An XMAS operator (one node of a plan tree).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `mksrc_{&srcid,$X}`: one binding per child of the source root.
    MkSrc { source: Name, var: Name },
    /// `mksrc` over an *inline view plan* instead of a registered
    /// source: one binding per child of the inner plan's (`tD`-rooted)
    /// virtual result. This is how naive composition splices a view
    /// under a query (Fig. 13) before rewrite rule 11 eliminates the
    /// `tD`/`mksrc` pair.
    MkSrcOver { input: Box<Op>, var: Name },
    /// `getD_{$A.r→$X}`: bind `$X` to every node reachable from `$A`'s
    /// node by `path` (whose first label matches the start node).
    GetD {
        input: Box<Op>,
        from: Name,
        path: LabelPath,
        to: Name,
    },
    /// `select_θ`.
    Select { input: Box<Op>, cond: Cond },
    /// `π̃_vars`: projection with duplicate elimination.
    Project { input: Box<Op>, vars: Vec<Name> },
    /// `join_θ`; `cond = None` is the cartesian product the translation
    /// uses to combine unconnected FOR expressions.
    Join {
        left: Box<Op>,
        right: Box<Op>,
        cond: Option<Cond>,
    },
    /// `rightSemijoin`/`leftSemijoin` (see [`Side`]).
    SemiJoin {
        left: Box<Op>,
        right: Box<Op>,
        cond: Option<Cond>,
        keep: Side,
    },
    /// `crElt_{label, skolem(group), children→out}`: construct one
    /// element per tuple; its oid is the skolem term over the group
    /// variables' keys.
    CrElt {
        input: Box<Op>,
        label: Name,
        skolem: Name,
        group: Vec<Name>,
        children: ChildSpec,
        out: Name,
        /// Immutable identity namespace for minted oids. Set to the
        /// translation-time `out` name and renamed only by
        /// composition-time alpha-renaming (which every evaluation
        /// mode shares) — never by rewrite-internal hygiene renames,
        /// so a rewritten plan mints the same `(skolem, tag, args)`
        /// oids as the naive plan it was derived from.
        tag: Name,
    },
    /// `cat_{x,y→out}`: per-tuple list concatenation.
    Cat {
        input: Box<Op>,
        left: CatArg,
        right: CatArg,
        out: Name,
    },
    /// `tD_{$A[,root_oid]}`: the final operator of every plan — export
    /// the `list[v₁,…,vₙ]` tree, hiding the tuple structure.
    TupleDestroy {
        input: Box<Op>,
        var: Name,
        root: Option<Name>,
    },
    /// `groupBy_{group→out}`: partition by the group variables; `out`
    /// is bound to each partition (a set of binding lists).
    GroupBy {
        input: Box<Op>,
        group: Vec<Name>,
        out: Name,
    },
    /// `apply_{plan, param→out}`: run `plan` once per input tuple, with
    /// `nestedSrc` reading the tuple's `param` value; `param = None`
    /// runs the plan on independent input.
    Apply {
        input: Box<Op>,
        plan: Box<Op>,
        param: Option<Name>,
        out: Name,
    },
    /// `nestedSrc_{$x}`: placeholder leaf inside nested plans.
    NestedSrc { var: Name },
    /// `rQ_{s,q,m}`: source-access operator for relational databases.
    RelQuery {
        server: Name,
        sql: SelectStmt,
        map: Vec<RqBinding>,
    },
    /// `orderBy_{[$V…]}`: sort by the *ids* of the bound nodes (the
    /// paper's orderBy "orders only according to the id's of the
    /// nodes").
    OrderBy { input: Box<Op>, vars: Vec<Name> },
    /// The empty plan (unsatisfiable path — rewrite rule 4), declaring
    /// the variables it would have produced.
    Empty { vars: Vec<Name> },
}

impl Op {
    /// The operator's direct inputs.
    pub fn inputs(&self) -> Vec<&Op> {
        match self {
            Op::MkSrc { .. } | Op::NestedSrc { .. } | Op::RelQuery { .. } | Op::Empty { .. } => {
                vec![]
            }
            Op::MkSrcOver { input, .. } => vec![input],
            Op::GetD { input, .. }
            | Op::Select { input, .. }
            | Op::Project { input, .. }
            | Op::CrElt { input, .. }
            | Op::Cat { input, .. }
            | Op::TupleDestroy { input, .. }
            | Op::GroupBy { input, .. }
            | Op::OrderBy { input, .. } => vec![input],
            Op::Apply { input, .. } => vec![input],
            Op::Join { left, right, .. } | Op::SemiJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// A short operator name (for traces and tests).
    pub fn name(&self) -> &'static str {
        match self {
            Op::MkSrc { .. } => "mksrc",
            Op::MkSrcOver { .. } => "mksrc",
            Op::GetD { .. } => "getD",
            Op::Select { .. } => "select",
            Op::Project { .. } => "project",
            Op::Join { .. } => "join",
            Op::SemiJoin {
                keep: Side::Left, ..
            } => "Rsemijoin",
            Op::SemiJoin {
                keep: Side::Right, ..
            } => "Lsemijoin",
            Op::CrElt { .. } => "crElt",
            Op::Cat { .. } => "cat",
            Op::TupleDestroy { .. } => "tD",
            Op::GroupBy { .. } => "gBy",
            Op::Apply { .. } => "apply",
            Op::NestedSrc { .. } => "nSrc",
            Op::RelQuery { .. } => "rQ",
            Op::OrderBy { .. } => "orderBy",
            Op::Empty { .. } => "empty",
        }
    }

    /// Render just this operator's head (no inputs), paper-style:
    /// `crElt(custRec, f($C), $W -> $V)`.
    pub fn head(&self) -> String {
        fn vars(vs: &[Name]) -> String {
            vs.iter()
                .map(|v| v.display_var())
                .collect::<Vec<_>>()
                .join(",")
        }
        match self {
            Op::MkSrc { source, var } => format!("mksrc({source}, {})", var.display_var()),
            Op::MkSrcOver { var, .. } => format!("mksrc(<view>, {})", var.display_var()),
            Op::GetD { from, path, to, .. } => {
                format!("getD({}.{path}, {})", from.display_var(), to.display_var())
            }
            Op::Select { cond, .. } => format!("select({cond})"),
            Op::Project { vars: vs, .. } => format!("project({})", vars(vs)),
            Op::Join { cond, .. } => match cond {
                Some(c) => format!("join({c})"),
                None => "join(×)".to_string(),
            },
            Op::SemiJoin { cond, keep, .. } => {
                let n = if *keep == Side::Right {
                    "Lsemijoin"
                } else {
                    "Rsemijoin"
                };
                match cond {
                    Some(c) => format!("{n}({c})"),
                    None => format!("{n}(×)"),
                }
            }
            Op::CrElt {
                label,
                skolem,
                group,
                children,
                out,
                ..
            } => format!(
                "crElt({label}, {skolem}({}), {children} -> {})",
                vars(group),
                out.display_var()
            ),
            Op::Cat {
                left, right, out, ..
            } => {
                format!("cat({left}, {right} -> {})", out.display_var())
            }
            Op::TupleDestroy { var, root, .. } => match root {
                Some(r) => format!("tD({}, {r})", var.display_var()),
                None => format!("tD({})", var.display_var()),
            },
            Op::GroupBy { group, out, .. } => {
                format!("gBy([{}] -> {})", vars(group), out.display_var())
            }
            Op::Apply { param, out, .. } => match param {
                Some(p) => format!("apply(p, {} -> {})", p.display_var(), out.display_var()),
                None => format!("apply(p, null -> {})", out.display_var()),
            },
            Op::NestedSrc { var } => format!("nSrc({})", var.display_var()),
            Op::RelQuery { server, sql, map } => {
                let m: Vec<String> = map.iter().map(|b| b.to_string()).collect();
                format!("rQ({server}, \"{sql}\", {{{}}})", m.join(", "))
            }
            Op::OrderBy { vars: vs, .. } => format!("orderBy([{}])", vars(vs)),
            Op::Empty { vars: vs } => format!("empty({})", vars(vs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_common::CmpOp;

    #[test]
    fn heads_render_paper_style() {
        let mk = Op::MkSrc {
            source: Name::new("root1"),
            var: Name::new("K"),
        };
        assert_eq!(mk.head(), "mksrc(root1, $K)");
        let gd = Op::GetD {
            input: Box::new(mk.clone()),
            from: Name::new("K"),
            path: LabelPath::parse("customer").unwrap(),
            to: Name::new("C"),
        };
        assert_eq!(gd.head(), "getD($K.customer, $C)");
        let ce = Op::CrElt {
            input: Box::new(gd.clone()),
            label: Name::new("custRec"),
            skolem: Name::new("f"),
            group: vec![Name::new("C")],
            children: ChildSpec::ListVar(Name::new("W")),
            tag: Name::new("V"),
            out: Name::new("V"),
        };
        assert_eq!(ce.head(), "crElt(custRec, f($C), $W -> $V)");
        let sj = Op::SemiJoin {
            left: Box::new(mk.clone()),
            right: Box::new(gd.clone()),
            cond: Some(Cond::cmp_vars("C", CmpOp::Eq, "C2")),
            keep: Side::Right,
        };
        assert_eq!(sj.head(), "Lsemijoin($C = $C2)");
        assert_eq!(sj.name(), "Lsemijoin");
    }

    #[test]
    fn inputs_enumeration() {
        let mk = Op::MkSrc {
            source: Name::new("r"),
            var: Name::new("X"),
        };
        assert!(mk.inputs().is_empty());
        let j = Op::Join {
            left: Box::new(mk.clone()),
            right: Box::new(mk.clone()),
            cond: None,
        };
        assert_eq!(j.inputs().len(), 2);
    }

    #[test]
    fn rq_map_display_is_one_based() {
        let b = RqBinding {
            var: Name::new("C"),
            kind: RqKind::Element {
                element: Name::new("customer"),
                cols: vec![(Name::new("id"), 0), (Name::new("name"), 1)],
                key: vec![0],
            },
        };
        // Fig. 22 writes {$C = {1,2}} with 1-based positions.
        assert_eq!(b.to_string(), "$C = {1,2}");
    }
}
