//! Selection and join conditions.

use mix_common::{CmpOp, Name, Value};
use mix_xml::Oid;
use std::fmt;

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CondArg {
    /// A variable (bound to a leaf whose value is compared).
    Var(Name),
    /// A constant.
    Const(Value),
}

impl CondArg {
    /// The variable, if this side is one.
    pub fn var(&self) -> Option<&Name> {
        match self {
            CondArg::Var(v) => Some(v),
            CondArg::Const(_) => None,
        }
    }
}

impl fmt::Display for CondArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondArg::Var(v) => write!(f, "{}", v.display_var()),
            CondArg::Const(Value::Str(s)) => write!(f, "\"{s}\""),
            CondArg::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A condition `θ` of `select`, `join` or `semijoin`.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `$v op c` or `$v₁ op $v₂` on leaf values.
    Cmp { l: CondArg, op: CmpOp, r: CondArg },
    /// `$v = &oid` — fixes a variable to a specific vertex. This is the
    /// selection decontextualization adds (Fig. 10's
    /// `select($C = &XYZ123)`).
    OidEq { var: Name, oid: Oid },
    /// `$v₁ ≐ $v₂` — the bound *nodes* are the same object (equal
    /// keys/oids). Rule 9 introduces joins on group-by variables with
    /// this condition (the `join($C)` of Fig. 18).
    OidCmp { l: Name, r: Name },
    /// A conjunction `θ₁ AND θ₂ AND …`. Produced when the optimizer
    /// folds a spanning selection into a join predicate so the hash
    /// kernels can extract every equi-conjunct at once.
    And(Vec<Cond>),
}

impl Cond {
    /// `$v op c` shorthand.
    pub fn cmp_const(v: impl Into<Name>, op: CmpOp, c: impl Into<Value>) -> Cond {
        Cond::Cmp {
            l: CondArg::Var(v.into()),
            op,
            r: CondArg::Const(c.into()),
        }
    }

    /// `$v₁ op $v₂` shorthand.
    pub fn cmp_vars(l: impl Into<Name>, op: CmpOp, r: impl Into<Name>) -> Cond {
        Cond::Cmp {
            l: CondArg::Var(l.into()),
            op,
            r: CondArg::Var(r.into()),
        }
    }

    /// Conjoin two optional conditions, flattening nested `And`s.
    pub fn and(a: Option<Cond>, b: Option<Cond>) -> Option<Cond> {
        let mut parts = Vec::new();
        for c in [a, b].into_iter().flatten() {
            match c {
                Cond::And(cs) => parts.extend(cs),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => None,
            1 => Some(parts.pop().expect("one element")),
            _ => Some(Cond::And(parts)),
        }
    }

    /// The flattened conjunct list (a non-`And` condition is a
    /// singleton conjunction).
    pub fn conjuncts(&self) -> Vec<&Cond> {
        match self {
            Cond::And(cs) => cs.iter().flat_map(|c| c.conjuncts()).collect(),
            other => vec![other],
        }
    }

    /// The variables this condition reads.
    pub fn vars(&self) -> Vec<Name> {
        match self {
            Cond::Cmp { l, r, .. } => l.var().into_iter().chain(r.var()).cloned().collect(),
            Cond::OidEq { var, .. } => vec![var.clone()],
            Cond::OidCmp { l, r } => vec![l.clone(), r.clone()],
            Cond::And(cs) => {
                let mut out = Vec::new();
                for c in cs {
                    for v in c.vars() {
                        if !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
                out
            }
        }
    }

    /// Rewrite variable names (used by the rewriter's renaming steps).
    pub fn rename(&self, from: &Name, to: &Name) -> Cond {
        let map = |a: &CondArg| match a {
            CondArg::Var(v) if v == from => CondArg::Var(to.clone()),
            other => other.clone(),
        };
        match self {
            Cond::Cmp { l, op, r } => Cond::Cmp {
                l: map(l),
                op: *op,
                r: map(r),
            },
            Cond::OidEq { var, oid } => Cond::OidEq {
                var: if var == from { to.clone() } else { var.clone() },
                oid: oid.clone(),
            },
            Cond::OidCmp { l, r } => Cond::OidCmp {
                l: if l == from { to.clone() } else { l.clone() },
                r: if r == from { to.clone() } else { r.clone() },
            },
            Cond::And(cs) => Cond::And(cs.iter().map(|c| c.rename(from, to)).collect()),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp { l, op, r } => write!(f, "{l} {op} {r}"),
            Cond::OidEq { var, oid } => write!(f, "{} = {oid}", var.display_var()),
            Cond::OidCmp { l, r } => write!(f, "{} = {}", l.display_var(), r.display_var()),
            Cond::And(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_figures() {
        let c = Cond::cmp_const("3", CmpOp::Gt, 20000);
        assert_eq!(c.to_string(), "$3 > 20000");
        let c = Cond::cmp_vars("1", CmpOp::Eq, "2");
        assert_eq!(c.to_string(), "$1 = $2");
        let c = Cond::OidEq {
            var: Name::new("C"),
            oid: Oid::key("XYZ123"),
        };
        assert_eq!(c.to_string(), "$C = &XYZ123");
    }

    #[test]
    fn vars_and_rename() {
        let c = Cond::cmp_vars("a", CmpOp::Lt, "b");
        assert_eq!(c.vars(), vec![Name::new("a"), Name::new("b")]);
        let r = c.rename(&Name::new("a"), &Name::new("x"));
        assert_eq!(r.to_string(), "$x < $b");
        let c = Cond::cmp_const("a", CmpOp::Eq, "z");
        assert_eq!(c.vars().len(), 1);
    }
}
