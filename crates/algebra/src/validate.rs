//! Whole-plan validation.

use crate::op::Op;
use crate::plan::{var_info, Plan, VarInfo};
use mix_common::{MixError, Result};
use std::collections::HashMap;

/// Validate a complete plan: variable scoping, join disjointness,
/// `nestedSrc`/`apply` pairing, and the invariant that the root is a
/// `tD` ("the tuple destroy operator is used as the final operator in
/// every XMAS plan").
pub fn validate(plan: &Plan) -> Result<VarInfo> {
    if !matches!(plan.root, Op::TupleDestroy { .. } | Op::Empty { .. }) {
        return Err(MixError::invalid(format!(
            "plan root must be tD (or the empty plan), found {}",
            plan.root.name()
        )));
    }
    let env = HashMap::new();
    // var_info of the tD checks its whole subtree; compute on the tD's
    // input so callers get the exported tuple variables.
    var_info(&plan.root, &env)?;
    match &plan.root {
        Op::TupleDestroy { input, .. } => var_info(input, &env),
        Op::Empty { .. } => Ok(VarInfo::default()),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_common::Name;

    #[test]
    fn root_must_be_td() {
        let plan = Plan::new(Op::MkSrc {
            source: Name::new("r"),
            var: Name::new("X"),
        });
        assert!(validate(&plan).is_err());
        let ok = Plan::new(Op::TupleDestroy {
            input: Box::new(Op::MkSrc {
                source: Name::new("r"),
                var: Name::new("X"),
            }),
            var: Name::new("X"),
            root: Some(Name::new("rootv")),
        });
        let info = validate(&ok).unwrap();
        assert_eq!(info.vars, vec![Name::new("X")]);
    }

    #[test]
    fn empty_plan_is_valid() {
        let plan = Plan::new(Op::Empty {
            vars: vec![Name::new("X")],
        });
        assert!(validate(&plan).is_ok());
    }
}
