//! Served mode: the quickstart flow over a socket.
//!
//! Starts a `mix-serve` server on a loopback port, connects a
//! [`WireClient`], and runs the paper's running example through the
//! framed wire protocol — the same [`Command`]s `examples/quickstart.rs`
//! dispatches in process, length-prefix framed over TCP. Also shows
//! what admission control looks like from the client side.
//!
//! Run with `cargo run --example served`.

use mix::prelude::*;
use std::sync::Arc;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn main() -> std::result::Result<(), WireError> {
    // Each accepted session gets its own mediator from this factory on
    // a dedicated worker thread (the engine itself is single-threaded).
    let factory: Arc<dyn Fn() -> Mediator + Send + Sync> = Arc::new(|| {
        let (catalog, _db) = mix::wrapper::fig2_catalog();
        Mediator::new(catalog)
    });

    let mut server = Server::start(
        "127.0.0.1:0", // port 0: the OS picks; server.addr() tells us
        ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        },
        Arc::clone(&factory),
    )
    .map_err(WireError::Io)?;
    println!("serving on {} (max 2 sessions)", server.addr());

    // Handshake: Hello -> Welcome carries the session id.
    let mut client = WireClient::connect(server.addr())?;
    println!("connected as session {}", client.session_id());

    // The quickstart script, now with a network between the halves.
    let p0 = client.query(Q1)?;
    let p1 = client.d(p0)?.expect("first CustRec");
    println!(
        "d(p0) -> {} over the wire",
        client.fl(p1)?.expect("an element")
    );

    // Bulk navigation: one round trip ships the whole child list as a
    // columnar block instead of 3·n single-step commands.
    let block = client.export(p1, 0)?;
    println!("export(p1): {} children in one frame", block.len());
    for r in 0..block.len() {
        println!(
            "  node={} label={}",
            block.value_at(r, 0),
            block.value_at(r, 1)
        );
    }

    // Query in place from the CustRec node, rendered server-side.
    let p9 = client.q(
        "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
        p1,
    )?;
    println!("in-place query result:\n{}", client.render(p9)?);

    // A stale handle is a clean error, not a dead session.
    match client.fl(WireNode {
        result: 99,
        node: 0,
    }) {
        Err(WireError::Mix(e)) => println!("stale handle over the wire -> {e}"),
        other => println!("unexpected: {other:?}"),
    }
    println!(
        "...and the session still works: {} children",
        client.child_count(p0)?
    );

    // Admission control: a second session fits, a third is rejected.
    let second = WireClient::connect(server.addr())?;
    match WireClient::connect(server.addr()) {
        Err(WireError::Rejected(reason)) => println!("third session rejected: {reason}"),
        Err(other) => println!("unexpected error: {other}"),
        Ok(_) => println!("unexpected: third session admitted"),
    }
    drop(second);

    client.close()?;
    server.shutdown(); // drains in-flight commands, joins every worker
    println!(
        "server closed cleanly: {} opened / {} closed, {} prefetcher threads live",
        server.stats().get(Counter::SessionsOpened),
        server.stats().get(Counter::SessionsClosed),
        active_prefetchers(),
    );
    Ok(())
}
