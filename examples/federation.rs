//! Mediators over mediators (paper Section 4: "a MIX mediator can be
//! such a source to another MIX mediator … client navigations are
//! translated into r and d commands sent to the source").
//!
//! ```sh
//! cargo run --example federation
//! ```
//!
//! A lower mediator integrates the relational customers/orders sources
//! into the CustRec view; an upper mediator registers that *virtual*
//! result as one of its sources and re-queries it. Navigation at the
//! upper level propagates down the stack: the relational source only
//! ships what the top-level client actually looks at.

use mix::prelude::*;
use mix_repro::datagen::customers_orders;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn main() -> Result<()> {
    let (lower_catalog, db) = customers_orders(1000, 3, 99);
    let stats = db.stats().clone();

    // --- the lower mediator: integrates the relational sources -----
    let lower = Mediator::new(lower_catalog);
    let mut lower_session = lower.session();
    let view_root = lower_session.query(Q1)?;
    println!("lower mediator: Q1 view created (virtual — nothing fetched)");
    println!(
        "  tuples shipped so far: {}",
        stats.get(Counter::TuplesShipped)
    );

    // --- the upper mediator: the lower result is one of its sources --
    let mut upper_catalog = Catalog::new();
    upper_catalog.register_nav(
        "custview",
        lower_session.export_result(view_root, "custview"),
    );
    let upper = Mediator::new(upper_catalog);
    let mut upper_session = upper.session();

    // The upper client restructures the federated view.
    let p = upper_session.query(
        "FOR $R IN document(custview)/CustRec \
         RETURN <Account> $R </Account> {$R}",
    )?;
    println!("upper mediator: re-query issued (still virtual)");
    println!(
        "  tuples shipped so far: {}",
        stats.get(Counter::TuplesShipped)
    );

    // Browse three accounts at the top; d/r commands cascade through
    // BOTH mediators down to the relational cursor.
    let mut cur = upper_session.d(p).unwrap();
    for i in 0..3 {
        let Some(acct) = cur else { break };
        let label = upper_session.fl(acct).unwrap().unwrap();
        let inner = upper_session.d(acct).unwrap().unwrap();
        println!(
            "  account {}: {} / inner {}",
            i + 1,
            label,
            upper_session.oid(inner)
        );
        cur = upper_session.r(acct).unwrap();
    }
    println!(
        "after browsing 3 of 1000 accounts through two mediators, the \
         relational source shipped only {} tuples",
        stats.get(Counter::TuplesShipped)
    );
    Ok(())
}
