//! EXPLAIN and EXPLAIN ANALYZE for mediated queries.
//!
//! Two levels:
//!  * [`Mediator::explain`] renders the plan stages for a query
//!    *without executing it* — naive logical plan, optimized plan, and
//!    the post-split physical plan with its SQL pushdowns.
//!  * [`Command::Explain`] annotates the physical plan of a live
//!    result with per-operator pull/tuple counts, so you can watch the
//!    lazy engine do exactly as much work as navigation demanded.
//!
//! The session half runs entirely through [`QdomSession::dispatch`] —
//! the same typed commands a `mix-serve` wire client sends — including
//! the `Stats` command that snapshots the session's work counters.
//!
//! Run with `cargo run --example explain`.

use mix::prelude::*;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

/// Unwrap the reply variants this example expects.
fn node(reply: Reply) -> Result<WireNode> {
    match reply.into_result()? {
        Reply::Node(n) => Ok(n),
        other => Err(MixError::internal(format!("unexpected reply {other:?}"))),
    }
}

fn text(reply: Reply) -> Result<String> {
    match reply.into_result()? {
        Reply::Text(t) => Ok(t),
        other => Err(MixError::internal(format!("unexpected reply {other:?}"))),
    }
}

fn main() -> Result<()> {
    let (catalog, _db) = mix::wrapper::fig2_catalog();
    let mediator = Mediator::new(catalog);

    // ---- EXPLAIN: plan stages, no execution -------------------------
    println!("EXPLAIN (static — nothing executed)");
    println!("{}", mediator.explain(Q1)?);

    // ---- EXPLAIN ANALYZE: counts from a live lazy session -----------
    let mut session = mediator.session();
    let root = node(session.dispatch(Command::Query { text: Q1.into() }))?;
    let before = session.ctx().stats().snapshot();

    println!("after `query` (virtual result, nothing pulled yet):");
    println!("{}", text(session.dispatch(Command::Explain { p: root }))?);

    // One navigation step: descend to the first CustRec and force its
    // children. Only the operators on that path should show pulls.
    let first = match session.dispatch(Command::D { p: root }).into_result()? {
        Reply::Step(Some(n)) => n,
        other => panic!("result has children, got {other:?}"),
    };
    let kids = match session
        .dispatch(Command::ChildCount { p: first })
        .into_result()?
    {
        Reply::Count(n) => n,
        other => panic!("expected a count, got {other:?}"),
    };
    println!("after `d` + counting {kids} children of the first CustRec:");
    println!("{}", text(session.dispatch(Command::Explain { p: root }))?);

    println!("work counted during navigation:");
    print!("{}", session.ctx().stats().snapshot().since(&before));

    // ---- the plan cache, made visible -------------------------------
    // The same query-in-place issued from two sibling nodes: the first
    // pays the full decontextualize -> rewrite pipeline, the second is
    // a template hit with only skolem-key substitution. The `Stats`
    // command snapshots cumulative counters, so diffing two snapshots
    // is what makes the `plan cache hits` line visible on the second.
    const QIP: &str = "FOR $O IN document(root)/OrderInfo RETURN $O";
    let second = match session.dispatch(Command::R { p: first }).into_result()? {
        Reply::Step(Some(n)) => n,
        other => panic!("result has a second CustRec, got {other:?}"),
    };

    let cache_hits = |session: &mut QdomSession| -> Result<u64> {
        match session.dispatch(Command::Stats).into_result()? {
            Reply::Stats(counters) => Ok(counters
                .iter()
                .find(|(label, _)| label == Counter::PlanCacheHits.label())
                .map(|(_, v)| *v)
                .unwrap_or(0)),
            other => panic!("expected counters, got {other:?}"),
        }
    };

    let before_q1 = session.ctx().stats().snapshot();
    let hits_before = cache_hits(&mut session)?;
    node(session.dispatch(Command::Q {
        text: QIP.into(),
        from: first,
    }))?;
    println!("first query-in-place (cache miss):");
    print!("{}", session.ctx().stats().snapshot().since(&before_q1));

    let before_q2 = session.ctx().stats().snapshot();
    node(session.dispatch(Command::Q {
        text: QIP.into(),
        from: second,
    }))?;
    println!("second query-in-place from a sibling (cache hit):");
    print!("{}", session.ctx().stats().snapshot().since(&before_q2));

    let hits_after = cache_hits(&mut session)?;
    println!(
        "plan cache hits over both (via the Stats command): {}",
        hits_after - hits_before
    );
    Ok(())
}
