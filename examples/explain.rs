//! EXPLAIN and EXPLAIN ANALYZE for mediated queries.
//!
//! Two levels:
//!  * [`Mediator::explain`] renders the plan stages for a query
//!    *without executing it* — naive logical plan, optimized plan, and
//!    the post-split physical plan with its SQL pushdowns.
//!  * [`QdomSession::explain`] annotates the physical plan of a live
//!    result with per-operator pull/tuple counts, so you can watch the
//!    lazy engine do exactly as much work as navigation demanded.
//!
//! Run with `cargo run --example explain`.

use mix::prelude::*;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn main() -> Result<()> {
    let (catalog, _db) = mix::wrapper::fig2_catalog();
    let mediator = Mediator::new(catalog);

    // ---- EXPLAIN: plan stages, no execution -------------------------
    println!("EXPLAIN (static — nothing executed)");
    println!("{}", mediator.explain(Q1)?);

    // ---- EXPLAIN ANALYZE: counts from a live lazy session -----------
    let mut session = mediator.session();
    let root = session.query(Q1)?;
    let before = session.ctx().stats().snapshot();

    println!("after `query` (virtual result, nothing pulled yet):");
    println!("{}", session.explain(root));

    // One navigation step: descend to the first CustRec and force its
    // children. Only the operators on that path should show pulls.
    let first = session.d(root).unwrap().expect("result has children");
    let kids = session.child_count(first).unwrap();
    println!("after `d` + counting {kids} children of the first CustRec:");
    println!("{}", session.explain(root));

    println!("work counted during navigation:");
    print!("{}", session.ctx().stats().snapshot().since(&before));

    // ---- the plan cache, made visible -------------------------------
    // The same query-in-place issued from two sibling nodes: the first
    // pays the full decontextualize -> rewrite pipeline, the second is
    // a template hit with only skolem-key substitution. Printing each
    // query's own counter *delta* (not cumulative totals) is what makes
    // the `plan cache hits` line visible on the second one.
    const QIP: &str = "FOR $O IN document(root)/OrderInfo RETURN $O";
    let second = session
        .r(first)
        .unwrap()
        .expect("result has a second CustRec");

    let before_q1 = session.ctx().stats().snapshot();
    session.q(QIP, first)?;
    println!("first query-in-place (cache miss):");
    print!("{}", session.ctx().stats().snapshot().since(&before_q1));

    let before_q2 = session.ctx().stats().snapshot();
    session.q(QIP, second)?;
    println!("second query-in-place from a sibling (cache hit):");
    print!("{}", session.ctx().stats().snapshot().since(&before_q2));
    Ok(())
}
