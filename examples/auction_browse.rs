//! The introduction's information-discovery session, replayed
//! programmatically: "consider an electronic customer of the photo
//! equipment section of an auction site…".
//!
//! ```sh
//! cargo run --example auction_browse
//! ```
//!
//! The user (1) queries cameras under $300, (2) browses a few results
//! and realizes the query is too general, (3) refines by autofocus
//! speed and magazine rating, (4) browses into one camera, and
//! (5) queries that camera's matching lenses in place. The printed
//! source counters show how little of the database the whole session
//! actually pulled — the paper's navigation-driven-evaluation claim.

use mix::prelude::*;
use mix_repro::datagen::auction_db;

fn main() -> Result<()> {
    let (catalog, db) = auction_db(400, 12, 2026);
    let stats = db.stats().clone();
    stats.reset();
    let mediator = Mediator::new(catalog);
    let mut session = mediator.session();

    // A joined camera/lens view: each Listing groups a camera with its
    // matching lenses (the "matching lens" list of the introduction).
    let p0 = session.query(
        "FOR $C IN document(cameras)/camera $L IN document(lenses)/lens \
         WHERE $C/id/data() = $L/camid/data() AND $C/price/data() < 300 \
         RETURN <Listing> $C <Lens> $L </Lens> {$L} </Listing> {$C}",
    )?;
    println!("step 1: cameras under $300 (virtual result, nothing fetched yet)");
    println!(
        "  source tuples shipped: {}",
        stats.get(Counter::TuplesShipped)
    );

    // Browse the first three listings.
    let mut cur = session.d(p0).unwrap();
    for i in 0..3 {
        let Some(listing) = cur else { break };
        let cam = session.d(listing).unwrap().expect("camera child");
        let model = session
            .d(cam)
            .unwrap()
            .and_then(|f| session.r(f).unwrap()) // id, model
            .and_then(|f| session.d(f).unwrap())
            .and_then(|v| session.fv(v).unwrap());
        println!(
            "  listing {}: {} ({:?})",
            i + 1,
            session.oid(listing),
            model
        );
        cur = session.r(listing).unwrap();
    }
    println!(
        "step 2: browsed 3 listings; shipped so far: {}",
        stats.get(Counter::TuplesShipped)
    );

    // "His query is too general": refine in place from the result root.
    let p4 = session.q(
        "FOR $P IN document(root)/Listing \
         WHERE $P/camera/afspeed < 0.4 AND $P/camera/rating >= 1 \
         RETURN $P",
        p0,
    )?;
    println!("step 3: refined by autofocus speed < 0.4s and rating >= medium");
    let refined = session.child_count(p4).unwrap();
    println!("  refined result has {refined} listings");

    // Browse into the first refined listing and its lens list.
    let listing = session
        .d(p4)
        .unwrap()
        .expect("at least one refined listing");
    let cam = session.d(listing).unwrap().expect("camera");
    println!(
        "step 4: browsing into {} ({})",
        session.oid(listing),
        session.oid(cam)
    );

    // "There are too many lenses": query the lens list in place.
    let p9 = session.q(
        "FOR $L IN document(root)/Lens \
         WHERE $L/lens/cost < 300 AND $L/lens/diameter > 10 \
         RETURN $L",
        listing,
    )?;
    println!(
        "step 5: lenses of this camera under $300 with diameter > 10mm: {}",
        session.child_count(p9).unwrap()
    );
    println!("{}", session.render(p9));

    let total: u64 = stats.get(Counter::TuplesShipped);
    let db_size = 400 + 400 * 12;
    println!("session shipped {total} source tuples out of {db_size} rows in the database");
    Ok(())
}
