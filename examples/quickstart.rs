//! Quickstart: the paper's running example, end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Wraps the Fig. 2 relational database as XML sources, runs the Q1
//! integrated view (Fig. 3), navigates the virtual result with QDOM
//! commands, and issues queries in place — printing what the paper's
//! figures show at each step.

use mix::prelude::*;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn main() -> Result<()> {
    // The Fig. 2 database: customer(id, addr, name), orders(orid, cid, value).
    let (catalog, db) = mix::wrapper::fig2_catalog();
    println!("== sources ==");
    for name in ["root1", "root2"] {
        let doc = catalog.materialized(name)?;
        println!("{}", mix::xml::print::render_tree(&*doc, doc.root()));
    }
    db.stats().reset();

    let mediator = Mediator::new(catalog);
    let mut session = mediator.session();

    // Q1 (Fig. 3): customers with their orders, grouped.
    println!("== query Q1 ==\n{Q1}\n");
    let p0 = session.query(Q1)?;
    println!(
        "== optimized plan ==\n{}",
        session.result_info(p0).exec_plan.render()
    );

    // Navigate: the result is virtual; each step fetches only what it needs.
    let p1 = session.d(p0).unwrap().expect("first CustRec");
    println!(
        "d(p0) -> {} (id {})",
        session.fl(p1).unwrap().unwrap(),
        session.oid(p1)
    );
    println!(
        "after one step the sources shipped {} tuples",
        db.stats().get(Counter::TuplesShipped)
    );
    let p2 = session.r(p1).unwrap().expect("second CustRec");
    println!(
        "r(p1) -> {} (id {})",
        session.fl(p2).unwrap().unwrap(),
        session.oid(p2)
    );

    // Query in place from the first CustRec (decontextualization).
    let p9 = session.q(
        "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
        p1,
    )?;
    println!(
        "\n== in-place query result (orders < 600 of {}) ==",
        session.oid(p1)
    );
    println!("{}", session.render(p9));
    println!(
        "== its SQL ==\n{}",
        session.result_info(p9).exec_plan.render()
    );
    Ok(())
}
