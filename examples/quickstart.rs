//! Quickstart: the paper's running example, end to end, driven through
//! the typed command surface.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Wraps the Fig. 2 relational database as XML sources, runs the Q1
//! integrated view (Fig. 3), navigates the virtual result with QDOM
//! commands, and issues queries in place — printing what the paper's
//! figures show at each step.
//!
//! Every step here goes through [`QdomSession::dispatch`] with a
//! [`Command`], the same entry point a `mix-serve` wire session uses —
//! the named methods (`session.d(p)`, `session.query(text)`, …) are
//! thin wrappers over exactly these commands. See
//! `examples/served.rs` for the same flow over a socket.

use mix::prelude::*;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

/// Unwrap the reply variants this example expects.
fn node(reply: Reply) -> Result<WireNode> {
    match reply.into_result()? {
        Reply::Node(n) => Ok(n),
        other => Err(MixError::internal(format!("unexpected reply {other:?}"))),
    }
}

fn step(reply: Reply) -> Result<Option<WireNode>> {
    match reply.into_result()? {
        Reply::Step(n) => Ok(n),
        other => Err(MixError::internal(format!("unexpected reply {other:?}"))),
    }
}

fn label(reply: Reply) -> Result<Name> {
    match reply.into_result()? {
        Reply::Label(Some(n)) => Ok(n),
        other => Err(MixError::internal(format!("unexpected reply {other:?}"))),
    }
}

fn text(reply: Reply) -> Result<String> {
    match reply.into_result()? {
        Reply::Text(t) => Ok(t),
        other => Err(MixError::internal(format!("unexpected reply {other:?}"))),
    }
}

fn main() -> Result<()> {
    // The Fig. 2 database: customer(id, addr, name), orders(orid, cid, value).
    let (catalog, db) = mix::wrapper::fig2_catalog();
    println!("== sources ==");
    for name in ["root1", "root2"] {
        let doc = catalog.materialized(name)?;
        println!("{}", mix::xml::print::render_tree(&*doc, doc.root()));
    }
    db.stats().reset();

    let mediator = Mediator::new(catalog);
    let mut session = mediator.session();

    // Q1 (Fig. 3): customers with their orders, grouped.
    println!("== query Q1 ==\n{Q1}\n");
    let p0 = node(session.dispatch(Command::Query { text: Q1.into() }))?;
    let info = session.result_info(session.resolve_handle(p0)?);
    println!("== optimized plan ==\n{}", info.exec_plan.render());

    // Navigate: the result is virtual; each step fetches only what it needs.
    let p1 = step(session.dispatch(Command::D { p: p0 }))?.expect("first CustRec");
    println!(
        "d(p0) -> {} (id {})",
        label(session.dispatch(Command::Fl { p: p1 }))?,
        session.oid(session.resolve_handle(p1)?)
    );
    println!(
        "after one step the sources shipped {} tuples",
        db.stats().get(Counter::TuplesShipped)
    );
    let p2 = step(session.dispatch(Command::R { p: p1 }))?.expect("second CustRec");
    println!(
        "r(p1) -> {} (id {})",
        label(session.dispatch(Command::Fl { p: p2 }))?,
        session.oid(session.resolve_handle(p2)?)
    );

    // Bulk navigation: the children of the first CustRec as one block —
    // what a wire client uses to walk a sibling list in one round trip.
    match session
        .dispatch(Command::Export { p: p1, max_rows: 0 })
        .into_result()?
    {
        Reply::Block(block) => {
            println!("\n== export(p1): {} children as one block ==", block.len());
            for r in 0..block.len() {
                println!(
                    "  node={} label={}",
                    block.value_at(r, 0),
                    block.value_at(r, 1)
                );
            }
        }
        other => println!("unexpected reply {other:?}"),
    }

    // Query in place from the first CustRec (decontextualization).
    let p9 = node(session.dispatch(Command::Q {
        text: "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O".into(),
        from: p1,
    }))?;
    println!(
        "\n== in-place query result (orders < 600 of {}) ==",
        session.oid(session.resolve_handle(p1)?)
    );
    println!("{}", text(session.dispatch(Command::Render { p: p9 }))?);
    let info = session.result_info(session.resolve_handle(p9)?);
    println!("== its SQL ==\n{}", info.exec_plan.render());
    Ok(())
}
