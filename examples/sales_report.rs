//! Views, composition, and the rewriting optimizer at work.
//!
//! ```sh
//! cargo run --example sales_report
//! ```
//!
//! Defines the customers-with-orders view on a scaled database, then
//! runs a report query *against the view*. The mediator composes the
//! query with the view definition (Section 6), and the example prints
//! the complete rewrite derivation — the repository's live rendition of
//! the paper's Figs. 13→22 — followed by the SQL it ships. Finally it
//! runs the same report with optimization disabled and compares the
//! number of tuples each strategy pulled from the source.

use mix::prelude::*;
use mix_repro::datagen::customers_orders;

const VIEW: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

const REPORT: &str = "FOR $R IN document(custorders)/CustRec $S IN $R/OrderInfo \
     WHERE $S/order/value > 99000 \
     RETURN $R";

fn main() -> Result<()> {
    let (catalog, db) = customers_orders(500, 8, 7);
    let stats = db.stats().clone();

    // --- optimized run -------------------------------------------------
    let mut mediator = Mediator::new(catalog.clone());
    mediator.define_view("custorders", VIEW)?;
    let mut session = mediator.session();
    stats.reset();
    let p = session.query(REPORT)?;
    let info = session.result_info(p);
    println!("== rewrite derivation (the paper's Figs. 13→22) ==");
    for (i, step) in info.trace.steps.iter().enumerate() {
        println!("step {:2}: {}", i + 1, step.rule);
    }
    println!("\n== final plan ==\n{}", info.exec_plan.render());

    let big_spenders = session.child_count(p).unwrap();
    let optimized = stats.snapshot();
    println!("customers with an order above 99000: {big_spenders}");
    println!("optimized: {optimized}");

    // --- naive run ------------------------------------------------------
    let mut naive_mediator =
        Mediator::with_options(catalog, MediatorOptions::builder().optimize(false).build());
    naive_mediator.define_view("custorders", VIEW)?;
    let mut naive_session = naive_mediator.session();
    stats.reset();
    let pn = naive_session.query(REPORT)?;
    let naive_count = naive_session.child_count(pn).unwrap();
    let naive = stats.snapshot();
    println!("naive:     {naive}");
    assert_eq!(big_spenders, naive_count);
    println!(
        "\npushdown shipped {:.1}x fewer tuples than naive composition",
        naive[Counter::TuplesShipped].max(1) as f64
            / optimized[Counter::TuplesShipped].max(1) as f64
    );
    Ok(())
}
