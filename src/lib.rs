//! Root helper crate for the MIX reproduction workspace.
//!
//! All functionality lives in `crates/*` (re-exported through the
//! [`mix`] facade); this crate hosts the workspace-level `examples/`
//! and `tests/` directories plus shared synthetic-workload builders.

pub use mix;

pub mod datagen;
