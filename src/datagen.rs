//! Synthetic workload builders shared by examples, integration tests
//! and benchmarks.

use mix::prelude::*;
use mix::relational::fixtures::Lcg;
use mix::relational::{Column, ColumnType};

/// The paper's customers/orders schema at an arbitrary scale, wrapped
/// as sources `root1` (customer) and `root2` (order).
pub fn customers_orders(
    n_customers: usize,
    orders_per_customer: usize,
    seed: u64,
) -> (Catalog, Database) {
    let db = mix::relational::fixtures::gen_db(n_customers, orders_per_customer, seed);
    let catalog = mix::wrapper::wrap_customers_orders(db.clone());
    (catalog, db)
}

/// The introduction's auction scenario: photo equipment on an
/// eBay-like site. Two relations, wrapped as sources `cameras` and
/// `lenses`:
///
/// * `camera(id, model, price, afspeed, rating)` — `afspeed` is the
///   "autofocus speed" attribute, `rating` the "Popular Photo Magazine
///   Rating" (0 = low … 2 = high);
/// * `lens(id, camid, cost, diameter, region)` — `camid` links a lens
///   to its matching camera, `region` is the current owner's location.
pub fn auction_db(n_cameras: usize, lenses_per_camera: usize, seed: u64) -> (Catalog, Database) {
    let mut db = Database::new("auction");
    db.create_table(
        "camera",
        Schema::new(
            vec![
                Column::new("id", ColumnType::Text),
                Column::new("model", ColumnType::Text),
                Column::new("price", ColumnType::Int),
                Column::new("afspeed", ColumnType::Float),
                Column::new("rating", ColumnType::Int),
            ],
            &["id"],
        )
        .expect("static schema"),
    )
    .expect("fresh table");
    db.create_table(
        "lens",
        Schema::new(
            vec![
                Column::new("id", ColumnType::Text),
                Column::new("camid", ColumnType::Text),
                Column::new("cost", ColumnType::Int),
                Column::new("diameter", ColumnType::Int),
                Column::new("region", ColumnType::Text),
            ],
            &["id"],
        )
        .expect("static schema"),
    )
    .expect("fresh table");

    let mut rng = Lcg(seed);
    let brands = ["Nikon", "Canon", "Pentax", "Olympus", "Leica"];
    let regions = ["SoCal", "NorCal", "PNW", "East", "Midwest"];
    let mut lens_id = 0usize;
    for i in 0..n_cameras {
        // Interned: the camera id recurs as the foreign key of every
        // one of its lenses.
        let id = intern(&format!("CAM{i:05}"));
        let model = format!("{}{}", brands[i % brands.len()], 100 + i);
        let price = 50 + rng.below(1950) as i64;
        let afspeed = (1 + rng.below(19)) as f64 / 10.0;
        let rating = rng.below(3) as i64;
        db.insert(
            "camera",
            vec![
                Value::Str(id.clone()),
                Value::str(model),
                Value::Int(price),
                Value::Float(afspeed),
                Value::Int(rating),
            ],
        )
        .expect("row fits schema");
        for _ in 0..lenses_per_camera {
            let lid = format!("LENS{lens_id:06}");
            lens_id += 1;
            db.insert(
                "lens",
                vec![
                    Value::str(lid),
                    Value::Str(id.clone()),
                    Value::Int(20 + rng.below(780) as i64),
                    Value::Int(5 + rng.below(25) as i64),
                    Value::str(regions[rng.below(regions.len() as u64) as usize]),
                ],
            )
            .expect("row fits schema");
        }
    }

    let mut catalog = Catalog::new();
    catalog.register_relation(RelationSource::new(
        db.clone(),
        "camera",
        "camera",
        "cameras",
    ));
    catalog.register_relation(RelationSource::new(db.clone(), "lens", "lens", "lenses"));
    (catalog, db)
}

/// A sharded-federation layout for the `*_sharded` builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardLayout {
    /// `n` shards by stable hash of the shard key.
    Hash(usize),
    /// `n` shards by key ranges computed from the actual key domain.
    Range(usize),
}

impl ShardLayout {
    fn scheme(self, db: &Database, spec: &ShardSpec) -> ShardScheme {
        match self {
            ShardLayout::Hash(n) => ShardScheme::Hash { shards: n },
            ShardLayout::Range(n) => {
                ShardScheme::range_from(db, spec, n).expect("spec covers the shard columns")
            }
        }
    }
}

/// [`customers_orders`] partitioned across shards: `customer` by `id`,
/// `orders` co-partitioned by `cid`, wrapped under the same roots. The
/// returned handle drives per-shard chaos/latency knobs.
pub fn customers_orders_sharded(
    n_customers: usize,
    orders_per_customer: usize,
    seed: u64,
    layout: ShardLayout,
) -> (Catalog, ShardedDatabase) {
    let db = mix::relational::fixtures::gen_db(n_customers, orders_per_customer, seed);
    let spec = ShardSpec::new()
        .with("customer", "id")
        .with("orders", "cid");
    let scheme = layout.scheme(&db, &spec);
    let (catalog, sharded) =
        mix::wrapper::wrap_customers_orders_sharded(&db, scheme).expect("spec covers all tables");
    (catalog, sharded)
}

/// [`auction_db`] partitioned across shards: `camera` by `id`, `lens`
/// co-partitioned by `camid`, wrapped under the same roots.
pub fn auction_db_sharded(
    n_cameras: usize,
    lenses_per_camera: usize,
    seed: u64,
    layout: ShardLayout,
) -> (Catalog, ShardedDatabase) {
    let (_, db) = auction_db(n_cameras, lenses_per_camera, seed);
    let spec = ShardSpec::new().with("camera", "id").with("lens", "camid");
    let scheme = layout.scheme(&db, &spec);
    let sharded = ShardedDatabase::partition(&db, spec, scheme).expect("spec covers all tables");
    let mut catalog = Catalog::new();
    catalog.register_relation(RelationSource::new(
        sharded.clone(),
        "camera",
        "camera",
        "cameras",
    ));
    catalog.register_relation(RelationSource::new(
        sharded.clone(),
        "lens",
        "lens",
        "lenses",
    ));
    (catalog, sharded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auction_db_is_deterministic_and_linked() {
        let (cat, db) = auction_db(10, 4, 7);
        assert_eq!(db.table("camera").unwrap().len(), 10);
        assert_eq!(db.table("lens").unwrap().len(), 40);
        let (_, db2) = auction_db(10, 4, 7);
        assert_eq!(
            db.table("lens").unwrap().rows(),
            db2.table("lens").unwrap().rows()
        );
        // every lens links to an existing camera
        let rows = db
            .execute_sql("SELECT l.id FROM lens l, camera c WHERE l.camid = c.id")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(rows.len(), 40);
        assert!(cat.relation_info("cameras").is_some());
        assert!(cat.relation_info("lenses").is_some());
    }

    #[test]
    fn customers_orders_wraps_gen_db() {
        let (cat, db) = customers_orders(5, 2, 3);
        assert_eq!(db.table("orders").unwrap().len(), 10);
        assert!(cat.relation_info("root1").is_some());
    }

    #[test]
    fn sharded_builders_cover_both_families() {
        let (cat, sharded) = customers_orders_sharded(6, 2, 3, ShardLayout::Hash(4));
        assert_eq!(sharded.shard_count(), 4);
        assert!(cat.relation_info("root1").is_some());
        let total: usize = (0..4)
            .map(|i| sharded.shard(i).table("customer").unwrap().len())
            .sum();
        assert_eq!(total, 6);
        let (cat, sharded) = auction_db_sharded(6, 2, 3, ShardLayout::Range(2));
        assert_eq!(sharded.shard_count(), 2);
        assert!(cat.relation_info("lenses").is_some());
        // Co-partitioned: every lens lives with its camera's shard.
        for i in 0..2 {
            let rows = sharded
                .shard(i)
                .execute_sql("SELECT l.id FROM lens l, camera c WHERE l.camid = c.id")
                .unwrap()
                .collect_all()
                .unwrap();
            assert_eq!(rows.len(), sharded.shard(i).table("lens").unwrap().len());
        }
    }
}
