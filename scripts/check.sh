#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full test suite.
# Everything runs offline (no crates.io access needed).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -p mix-bench -D warnings"
cargo clippy -p mix-bench --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> examples/explain.rs smoke run"
cargo run --quiet --release --example explain >/dev/null

echo "==> block_sweep bench smoke run"
cargo bench -p mix-bench --bench block_sweep -- --smoke >/dev/null

echo "All checks passed."
