#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, build, and the full test suite.
# Everything runs offline (no crates.io access needed).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -p mix-bench -D warnings"
cargo clippy -p mix-bench --all-targets -- -D warnings

echo "==> cargo clippy -p mix-proto -p mix-serve -D warnings"
cargo clippy -p mix-proto -p mix-serve --all-targets -- -D warnings

echo "==> cargo clippy -p mix-common -p mix-qdom -p mix-relational -D warnings (shared-state modules)"
cargo clippy -p mix-common -p mix-qdom -p mix-relational --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q

echo "==> chaos suite (fault injection, fixed seed 0xC0FFEE)"
cargo test -q --test chaos

# No loom/miri in-tree (offline builds): prefetcher concurrency is
# covered by deterministic schedule replay (equivalence sweeps under
# chaos faults) plus gauge-based thread-leak/drop tests instead.
echo "==> prefetch suite (sync equivalence, laziness, thread leaks)"
cargo test -q --test prefetch

echo "==> wire protocol + serve suite (codec round trips, wire-vs-in-process equivalence, admission, shutdown)"
cargo test -q -p mix-proto -p mix-serve

echo "==> shared-state concurrency suite (shared plan cache, pool, worker-pool server)"
cargo test -q -p mix-serve --test serve -- shared_ pooled_ sessions_multiplex
cargo test -q -p mix-common --lib -- pool:: shard:: ring::
cargo test -q -p mix-qdom --lib -- plan_cache shared_plan

# Deterministic single-threaded re-run: the shared-state suites must
# pass when the test harness provides no accidental parallelism.
echo "==> shared-state suite again, RUST_TEST_THREADS=1"
RUST_TEST_THREADS=1 cargo test -q -p mix-serve --test serve -- shared_ pooled_ sessions_multiplex

echo "==> no 'validated:' panics in non-test code or release builds"
if grep -rnE '(panic!|expect|unreachable!)\("validated' crates/*/src src; then
  echo "error: 'validated:' plan invariants must return MixError::Plan, not panic" >&2
  exit 1
fi
if grep -aq 'validated: ' target/release/experiments; then
  echo "error: release binary embeds a 'validated:' panic message" >&2
  exit 1
fi

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> examples/explain.rs smoke run"
cargo run --quiet --release --example explain >/dev/null

echo "==> block_sweep bench smoke run"
cargo bench -p mix-bench --bench block_sweep -- --smoke >/dev/null

echo "==> prefetch_overlap bench smoke run"
cargo bench -p mix-bench --bench prefetch_overlap -- --smoke >/dev/null

echo "==> columnar_sweep bench smoke run"
cargo bench -p mix-bench --bench columnar_sweep -- --smoke >/dev/null

echo "==> serve_bench smoke run (pooled server, shared plan cache, concurrent wire sessions)"
cargo bench -p mix-bench --bench serve_bench -- --smoke >/dev/null

echo "==> federation_sweep bench smoke run (shard routing, scatter-gather, merge overhead)"
cargo bench -p mix-bench --bench federation_sweep -- --smoke >/dev/null

echo "==> workload fuzz smoke (fixed-seed 200-case knob-matrix equivalence sweep)"
# Deterministic: default config is seed 0x4d49585f9, 200 cases. A
# failure prints the minimized repro script before exiting non-zero.
cargo run --quiet --release -p mix-workload --bin workload_fuzz

echo "==> workload soak smoke (~10s served-mode chaos soak, invariants only)"
cargo run --quiet --release -p mix-workload --bin workload_soak -- --smoke >/dev/null

echo "==> fuzzer-surfaced regression repros"
cargo test -q --test fuzz_regressions

echo "All checks passed."
