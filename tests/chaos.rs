//! Fault-injection sweep: the fallible backend path end to end.
//!
//! The chaos backend injects deterministic, seeded faults *between*
//! the relational executor and the cursor. Transient faults are
//! scheduled on successful pulls and injected before any row of the
//! faulted block is produced, so a retried pull returns exactly the
//! rows the failed one would have — which is what makes the headline
//! assertion here ("retries succeed ⇒ results bit-for-bit identical to
//! the no-fault run") exact rather than probabilistic. Permanent faults exercise graceful degradation: the
//! navigated prefix of a result stays readable, everything past the
//! failure surfaces as [`MixError::Backend`].

use mix::prelude::*;
use mix_repro::datagen::{customers_orders, customers_orders_sharded, ShardLayout};

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
const Q2: &str = "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"E\" RETURN $P";
const Q3: &str = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 60000 RETURN $O";

const SEED: u64 = 0xC0FFEE;

/// Walk the whole subtree with the fallible navigation commands,
/// recording identity, label, and value of every node.
fn drain_tree(s: &mut QdomSession<'_>, p: QNode, out: &mut String) -> Result<()> {
    out.push_str(&format!("{} {:?} {:?}\n", s.oid(p), s.fl(p)?, s.fv(p)?));
    let mut cur = s.d(p)?;
    while let Some(c) = cur {
        drain_tree(s, c, out)?;
        cur = s.r(c)?;
    }
    Ok(())
}

/// Run the paper's Q1 (query), Q2 (composition), and Q3
/// (decontextualization) session and drain every result completely.
/// Returns the concatenated transcript plus the source-side stats.
fn q123_transcript(
    block: BlockPolicy,
    fault: Option<FaultPolicy>,
    retry: RetryPolicy,
) -> Result<(String, Stats)> {
    q123_transcript_repr(block, fault, retry, true)
}

/// [`q123_transcript`] with the block representation pinned
/// (`columnar: false` = the boxed-row ablation).
fn q123_transcript_repr(
    block: BlockPolicy,
    fault: Option<FaultPolicy>,
    retry: RetryPolicy,
    columnar: bool,
) -> Result<(String, Stats)> {
    let (catalog, db) = customers_orders(12, 3, 17);
    let stats = db.stats().clone();
    db.set_fault_policy(fault);
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder()
            .block(block)
            .retry(retry)
            .columnar(columnar)
            .build(),
    );
    let mut s = m.session();
    let mut out = String::new();
    let p0 = s.query(Q1)?;
    drain_tree(&mut s, p0, &mut out)?;
    let p4 = s.q(Q2, p0)?; // composition from the root
    drain_tree(&mut s, p4, &mut out)?;
    let p1 = s.d(p0)?.expect("Q1 has results");
    let p9 = s.q(Q3, p1)?; // decontextualization from a CustRec
    drain_tree(&mut s, p9, &mut out)?;
    Ok((out, stats))
}

/// The headline equivalence: 10%-per-block transient faults with the
/// default retry budget are invisible — every Q1–Q3 drain is bit-for-bit
/// identical to the no-fault run, across all block policies.
#[test]
fn transient_faults_with_retries_are_invisible() {
    let mut total_faults = 0;
    for block in [BlockPolicy::Off, BlockPolicy::Fixed(8), BlockPolicy::Auto] {
        let (clean, clean_stats) =
            q123_transcript(block, None, RetryPolicy::default()).expect("no-fault run");
        let (chaotic, stats) = q123_transcript(
            block,
            Some(FaultPolicy::transient(SEED, 100)),
            RetryPolicy::default(),
        )
        .unwrap_or_else(|e| panic!("chaos run failed under {block:?}: {e}"));
        assert_eq!(clean, chaotic, "divergence under {block:?}");
        // Retried blocks are accounted exactly once: the shipped-row
        // and shipped-block counters match the fault-free run.
        assert_eq!(
            clean_stats.get(Counter::TuplesShipped),
            stats.get(Counter::TuplesShipped),
            "retried rows double-counted under {block:?}"
        );
        assert_eq!(
            clean_stats.get(Counter::BlocksShipped),
            stats.get(Counter::BlocksShipped),
            "retried blocks double-counted under {block:?}"
        );
        // Burst-1 transient faults: every injected fault fails exactly
        // one pull, and every failed pull is re-issued exactly once.
        assert_eq!(
            stats.get(Counter::RetriesAttempted),
            stats.get(Counter::FaultsInjected),
            "under {block:?}"
        );
        assert_eq!(stats.get(Counter::BackendErrors), 0, "under {block:?}");
        total_faults += stats.get(Counter::FaultsInjected);
    }
    // The sweep actually exercised the fault path.
    assert!(total_faults > 0, "seed {SEED:#x} injected no faults");
}

/// The block representation is invisible to the fault machinery: under
/// 10%-per-block transient chaos, the columnar path and the boxed-row
/// ablation produce bit-for-bit identical transcripts and identical
/// fault/retry/shipping counters. (The chaos gate admits *pull sizes*,
/// never representations, so the deterministic fault schedule replays
/// exactly.)
#[test]
fn columnar_and_row_paths_agree_under_chaos() {
    for block in [BlockPolicy::Fixed(8), BlockPolicy::Auto] {
        let mut runs = Vec::new();
        for columnar in [true, false] {
            let (out, stats) = q123_transcript_repr(
                block,
                Some(FaultPolicy::transient(SEED, 100)),
                RetryPolicy::default(),
                columnar,
            )
            .unwrap_or_else(|e| panic!("chaos run failed under {block:?}: {e}"));
            runs.push((
                out,
                [
                    Counter::TuplesShipped,
                    Counter::BlocksShipped,
                    Counter::FaultsInjected,
                    Counter::RetriesAttempted,
                    Counter::BackendErrors,
                ]
                .map(|c| stats.get(c)),
            ));
        }
        assert_eq!(
            runs[0], runs[1],
            "representation divergence under {block:?}"
        );
        assert!(runs[0].1[2] > 0, "seed {SEED:#x} injected no faults");
    }
}

/// A transient-fault burst longer than the retry budget exhausts it:
/// the navigation command that needed the data reports a transient
/// [`MixError::Backend`]; a budget covering the burst sails through.
#[test]
fn exhausted_retry_budget_surfaces_backend_error() {
    // Default budget is 4 retries; a burst of 9 outlasts it.
    let burst = FaultPolicy::transient(SEED, 1000).with_burst(9);
    let err = q123_transcript(BlockPolicy::Auto, Some(burst), RetryPolicy::default())
        .expect_err("burst must exhaust the default retry budget");
    assert!(
        matches!(err, MixError::Backend(_)),
        "expected a backend error, got: {err}"
    );
    assert!(err.is_transient(), "burst faults are transient: {err}");
    // A budget that covers the burst absorbs every fault.
    let generous = RetryPolicy {
        max_retries: 9,
        ..RetryPolicy::default()
    };
    let (clean, _) =
        q123_transcript(BlockPolicy::Auto, None, RetryPolicy::default()).expect("no-fault run");
    let (absorbed, stats) =
        q123_transcript(BlockPolicy::Auto, Some(burst), generous).expect("budget covers burst");
    assert_eq!(clean, absorbed);
    assert!(stats.get(Counter::RetriesAttempted) >= 9);
}

/// Graceful degradation under a permanent fault: rows before the
/// failure horizon stay navigable (and re-readable), the command that
/// first needs data past the horizon errors, and the error is latched —
/// asking again re-reports it instead of panicking or hanging.
#[test]
fn navigated_prefix_survives_permanent_fault() {
    let (catalog, db) = customers_orders(10, 2, 5);
    let stats = db.stats().clone();
    db.set_fault_policy(Some(FaultPolicy::fail_after(SEED, 3)));
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder().block(BlockPolicy::Off).build(),
    );
    let mut s = m.session();
    let p0 = s
        .query("FOR $C IN source(&root1)/customer RETURN $C")
        .expect("plan compiles before any pull");
    // Navigate up to the horizon: 3 rows ship fine.
    let mut seen = Vec::new();
    let mut cur = s.d(p0).expect("row 1 is before the horizon");
    while let Some(c) = cur {
        seen.push(c);
        match s.r(c) {
            Ok(next) => cur = next,
            Err(e) => {
                assert!(
                    matches!(e, MixError::Backend(_)),
                    "expected a backend error, got: {e}"
                );
                assert!(!e.is_transient(), "permanent faults are not retryable");
                cur = None;
            }
        }
    }
    assert_eq!(seen.len(), 3, "exactly the pre-horizon rows are readable");
    // Error-path laziness: the fault at row 3 must not ship rows > 3.
    assert!(
        stats.get(Counter::TuplesShipped) <= 3,
        "shipped {} rows past a horizon of 3",
        stats.get(Counter::TuplesShipped)
    );
    // The materialized prefix stays fully readable after the failure.
    for &c in &seen {
        assert_eq!(s.fl(c).unwrap().unwrap().as_str(), "customer");
        let id_field = s.d(c).unwrap().expect("fields were materialized");
        let leaf = s.d(id_field).unwrap().unwrap();
        assert!(s.fv(leaf).unwrap().is_some());
    }
    // The failure is latched: re-asking past the end re-reports it.
    let last = *seen.last().unwrap();
    assert!(s.r(last).is_err(), "latched error must be re-reported");
    assert!(stats.get(Counter::BackendErrors) >= 1);
}

/// [`q123_transcript`] over the 4-way hash federation: same data, same
/// session script, but every rQ scatters (or routes) across shards and
/// results flow through the mediator's ordered k-way merge.
fn q123_sharded_transcript(
    block: BlockPolicy,
    fault: Option<FaultPolicy>,
    retry: RetryPolicy,
) -> Result<(String, Stats)> {
    let (catalog, sharded) = customers_orders_sharded(12, 3, 17, ShardLayout::Hash(4));
    let stats = sharded.stats().clone();
    sharded.set_fault_policy(fault);
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder().block(block).retry(retry).build(),
    );
    let mut s = m.session();
    let mut out = String::new();
    let p0 = s.query(Q1)?;
    drain_tree(&mut s, p0, &mut out)?;
    let p4 = s.q(Q2, p0)?;
    drain_tree(&mut s, p4, &mut out)?;
    let p1 = s.d(p0)?.expect("Q1 has results");
    let p9 = s.q(Q3, p1)?;
    drain_tree(&mut s, p9, &mut out)?;
    Ok((out, stats))
}

/// The federation variant of the headline equivalence: 10%-per-block
/// transient faults across *all four shards* of a hash federation are
/// invisible under the default retry budget. The merge re-pulls only
/// the shard whose pull failed, so every Q1–Q3 drain is bit-for-bit
/// identical to the no-fault sharded run and no retried block is
/// double-counted.
#[test]
fn sharded_transient_faults_with_retries_are_invisible() {
    let mut total_faults = 0;
    for block in [BlockPolicy::Off, BlockPolicy::Fixed(8), BlockPolicy::Auto] {
        let (clean, clean_stats) =
            q123_sharded_transcript(block, None, RetryPolicy::default()).expect("no-fault run");
        let (chaotic, stats) = q123_sharded_transcript(
            block,
            Some(FaultPolicy::transient(SEED, 100)),
            RetryPolicy::default(),
        )
        .unwrap_or_else(|e| panic!("sharded chaos run failed under {block:?}: {e}"));
        assert_eq!(clean, chaotic, "sharded divergence under {block:?}");
        assert_eq!(
            clean_stats.get(Counter::TuplesShipped),
            stats.get(Counter::TuplesShipped),
            "retried shard rows double-counted under {block:?}"
        );
        assert_eq!(
            clean_stats.get(Counter::BlocksShipped),
            stats.get(Counter::BlocksShipped),
            "retried shard blocks double-counted under {block:?}"
        );
        assert_eq!(
            stats.get(Counter::RetriesAttempted),
            stats.get(Counter::FaultsInjected),
            "under {block:?}"
        );
        assert_eq!(stats.get(Counter::BackendErrors), 0, "under {block:?}");
        total_faults += stats.get(Counter::FaultsInjected);
    }
    assert!(
        total_faults > 0,
        "seed {SEED:#x} injected no faults on any shard"
    );
}

/// Kill-one-shard degradation: a permanent fault on one shard of a
/// 4-way hash scatter (a) keeps the merged prefix navigable and
/// bit-for-bit equal to the no-fault merge up to the point where the
/// merge first needs the dead shard, (b) latches the error — asking
/// again re-reports it, (c) keeps the already-materialized prefix
/// readable, and (d) leaves routed point queries that target healthy
/// shards fully usable in the same session.
#[test]
fn kill_one_shard_keeps_survivors_navigable() {
    const SCAN: &str = "FOR $C IN source(&root1)/customer RETURN $C";
    // The no-fault reference: all 12 customers, one transcript per row,
    // in merge order.
    let clean: Vec<String> = {
        let (catalog, _sharded) = customers_orders_sharded(12, 2, 5, ShardLayout::Hash(4));
        let m = Mediator::with_options(
            catalog,
            MediatorOptions::builder().block(BlockPolicy::Off).build(),
        );
        let mut s = m.session();
        let p0 = s.query(SCAN).expect("query");
        let mut rows = Vec::new();
        let mut cur = s.d(p0).expect("first row");
        while let Some(c) = cur {
            let mut one = String::new();
            drain_tree(&mut s, c, &mut one).expect("no-fault drain");
            rows.push(one);
            cur = s.r(c).expect("no-fault advance");
        }
        assert_eq!(rows.len(), 12);
        rows
    };

    // Same data, same layout; shard 2 dies after serving one row.
    let (catalog, sharded) = customers_orders_sharded(12, 2, 5, ShardLayout::Hash(4));
    let stats = sharded.stats().clone();
    let dead = 2;
    sharded
        .shard(dead)
        .set_fault_policy(Some(FaultPolicy::fail_after(SEED, 1)));
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder().block(BlockPolicy::Off).build(),
    );
    let mut s = m.session();
    let p0 = s.query(SCAN).expect("plan compiles before any pull");
    let mut handles = Vec::new();
    let mut rows = Vec::new();
    let mut cur = s.d(p0).expect("healthy shards serve the merge head");
    while let Some(c) = cur {
        let mut one = String::new();
        drain_tree(&mut s, c, &mut one).expect("pre-horizon rows are fully readable");
        handles.push(c);
        rows.push(one);
        match s.r(c) {
            Ok(next) => cur = next,
            Err(e) => {
                assert!(
                    matches!(e, MixError::Backend(_)),
                    "expected a backend error, got: {e}"
                );
                assert!(!e.is_transient(), "a dead shard is not retryable");
                cur = None;
            }
        }
    }
    assert!(
        !rows.is_empty() && rows.len() < 12,
        "merge horizon: read {} of 12 rows",
        rows.len()
    );
    // The surviving prefix is exactly the clean merge's prefix.
    assert_eq!(
        rows[..],
        clean[..rows.len()],
        "prefix diverged from the no-fault merge"
    );
    assert!(stats.get(Counter::BackendErrors) >= 1);
    // The failure is latched per shard: re-asking past the horizon
    // re-reports it instead of hanging or panicking.
    let last = *handles.last().unwrap();
    assert!(
        s.r(last).is_err(),
        "latched shard error must be re-reported"
    );
    // The materialized prefix stays readable after the failure.
    for &c in &handles {
        assert_eq!(s.fl(c).unwrap().unwrap().as_str(), "customer");
    }
    // Routed queries that never touch the dead shard still work: point
    // lookups on ids living on healthy shards drain end to end.
    let healthy = (0..sharded.shard_count())
        .find(|&i| i != dead && !sharded.shard(i).table("customer").unwrap().is_empty())
        .expect("some healthy shard holds customers");
    let id_rows = sharded
        .shard(healthy)
        .execute_sql("SELECT c.id FROM customer c")
        .expect("healthy shard answers SQL")
        .collect_all()
        .expect("healthy shard scan");
    let id = id_rows[0][0].as_str().expect("text key").to_string();
    let routed_before = stats.get(Counter::ShardQueriesRouted);
    let q = format!("FOR $C IN source(&root1)/customer WHERE $C/id/data() = \"{id}\" RETURN $C");
    let pr = s.query(&q).expect("routed query plans");
    let mut out = String::new();
    drain_tree(&mut s, pr, &mut out).expect("routed query drains despite the dead shard");
    assert!(out.contains(&id), "point lookup found its row:\n{out}");
    assert!(
        stats.get(Counter::ShardQueriesRouted) > routed_before,
        "the point lookup must route, not scatter"
    );
}

/// Observability of the retry machinery: EXPLAIN ANALYZE annotates the
/// rQ node that retried, scheduled backoff shows up in the
/// `RetryBackoffMs` counter when the policy sleeps, and traced sessions
/// see `fault`/`retry` events.
#[test]
fn retries_show_in_explain_and_backoff_counter() {
    use std::sync::Arc;
    let (catalog, db) = customers_orders(12, 3, 17);
    let stats = db.stats().clone();
    db.set_fault_policy(Some(FaultPolicy::transient(SEED, 250)));
    let retry = RetryPolicy {
        max_retries: 4,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        deadline_ms: None,
    };
    let tracer = Arc::new(CollectingTracer::new());
    let handle = TracerHandle::new(Arc::clone(&tracer) as Arc<dyn Tracer>);
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder()
            .retry(retry)
            .tracer(handle)
            .build(),
    );
    let mut s = m.session();
    let p0 = s.query(Q1).expect("query");
    let mut out = String::new();
    drain_tree(&mut s, p0, &mut out).expect("drain succeeds through retries");
    assert!(
        stats.get(Counter::RetriesAttempted) > 0,
        "no retries at 25%"
    );
    let explain = s.explain(p0);
    assert!(
        explain.contains(" retries="),
        "EXPLAIN ANALYZE must show per-rQ retry counts:\n{explain}"
    );
    assert!(
        stats.get(Counter::RetryBackoffMs) > 0,
        "1ms base backoff never registered"
    );
    let trace = tracer.render();
    assert!(
        trace.contains("fault") && trace.contains("retry"),
        "traced session must record fault/retry events:\n{trace}"
    );
}
