//! The observability layer, end to end: QDOM commands as root spans,
//! operator spans under the navigation that demanded them, SQL/row
//! events from the sources, and the laziness claim stated as "zero
//! operator spans until navigation".

use mix::prelude::*;
use std::sync::Arc;

/// Q1 flattened: one `R` element per matching (customer, order) pair.
/// Small enough to pin its whole span tree.
const QJ: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <R> $O </R> {$C, $O}";

fn traced_mediator(
    access: AccessMode,
    optimize: bool,
    hash_joins: bool,
) -> (Arc<CollectingTracer>, Mediator) {
    let (catalog, _db) = mix::wrapper::fig2_catalog();
    let tracer = Arc::new(CollectingTracer::new());
    let handle = TracerHandle::new(Arc::clone(&tracer) as Arc<dyn Tracer>);
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder()
            .access(access)
            .optimize(optimize)
            .hash_joins(hash_joins)
            .tracer(handle)
            .build(),
    );
    (tracer, m)
}

#[test]
fn unnavigated_lazy_query_emits_no_operator_spans() {
    let (t, m) = traced_mediator(AccessMode::Lazy, false, true);
    {
        let mut s = m.session();
        let _p0 = s.query(QJ).unwrap();
        // No navigation: the virtual result exists, nothing ran.
    }
    assert_eq!(t.span_names(), vec!["cmd:query".to_string()]);
}

#[test]
fn lazy_span_tree_for_one_navigation_step() {
    let (t, m) = traced_mediator(AccessMode::Lazy, false, true);
    {
        let mut s = m.session();
        let p0 = s.query(QJ).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        assert_eq!(s.fl(p1).unwrap().unwrap().as_str(), "R");
    }
    // Operator spans open at first pull — inside cmd:d, not cmd:query —
    // in demand order (top of the plan first), and close with their
    // pull/tuple totals when the session drops the streams. The SQL
    // each source issues (and every shipped row) surfaces as events
    // under the mksrc that demanded it: the probe side ships only one
    // customer, the hash build drains all three orders.
    let text = t.render();
    let expected = "\
cmd:query
cmd:d
  crElt node=1 depth=1 pulls=1 tuples=1
    gBy node=2 depth=2 mode=hash pulls=1 tuples=1
      join node=3 depth=3 kernel=hash pulls=1 tuples=1
        getD node=4 depth=4 pulls=1 tuples=1
          getD node=5 depth=5 pulls=1 tuples=1
            mksrc node=6 depth=6 src=root1 pulls=1 tuples=1
              - sql server=db1 stmt=SELECT * FROM customer ORDER BY id
              - row n=1
        getD node=7 depth=4 pulls=4 tuples=3
          getD node=8 depth=5 pulls=4 tuples=3
            mksrc node=9 depth=6 src=root2 pulls=4 tuples=3
              - sql server=db1 stmt=SELECT * FROM orders ORDER BY orid
              - row n=1
              - row n=2
              - row n=3
cmd:fl
";
    assert_eq!(text, expected);
    assert!(text.contains("kernel=hash"));
    assert!(!text.contains("kernel=nl"));
}

#[test]
fn eager_span_tree_is_strictly_nested_under_the_query() {
    let (t, m) = traced_mediator(AccessMode::Eager, false, true);
    {
        let mut s = m.session();
        let p0 = s.query(QJ).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        assert_eq!(s.fl(p1).unwrap().unwrap().as_str(), "R");
    }
    // Eager evaluation does all the work inside cmd:query; the later
    // cmd:d/cmd:fl navigate an already-materialized document.
    let text = t.render();
    let expected = "\
cmd:query
  crElt node=1 tuples=3
    gBy node=2 tuples=3
      join node=3 kernel=hash tuples=3
        getD node=4 tuples=2
          getD node=5 tuples=2
            mksrc node=6 tuples=2
              - sql server=db1 stmt=SELECT * FROM customer ORDER BY id
              - row n=1
              - row n=2
        getD node=7 tuples=3
          getD node=8 tuples=3
            mksrc node=9 tuples=3
              - sql server=db1 stmt=SELECT * FROM orders ORDER BY orid
              - row n=1
              - row n=2
              - row n=3
cmd:d
cmd:fl
";
    assert_eq!(text, expected);
    assert!(text.contains("kernel=hash"));
    assert!(!text.contains("kernel=nl"));
}

#[test]
fn nl_fallback_is_visible_in_spans() {
    let (t, m) = traced_mediator(AccessMode::Lazy, false, false);
    {
        let mut s = m.session();
        let p0 = s.query(QJ).unwrap();
        let _ = s.d(p0).unwrap().unwrap();
    }
    let text = t.render();
    assert!(text.contains("kernel=nl"), "{text}");
    assert!(!text.contains("kernel=hash"), "{text}");
}

#[test]
fn sql_and_row_events_nest_under_the_demanding_command() {
    // Optimized lazy run: the join is pushed to SQL; issuing the SQL
    // and each shipped row surface as events.
    let (t, m) = traced_mediator(AccessMode::Lazy, true, true);
    {
        let mut s = m.session();
        let p0 = s.query(QJ).unwrap();
        let _ = s.d(p0).unwrap().unwrap();
    }
    let text = t.render();
    assert!(text.contains("- sql server=db1"), "{text}");
    assert!(text.contains("- row n=1"), "{text}");
}

/// A traced mediator over fig2's data partitioned as a 2-way hash
/// federation (customer by id, orders co-partitioned by cid). Returns
/// the federation handle so tests can read the shard counters.
fn traced_sharded_mediator() -> (Arc<CollectingTracer>, ShardedDatabase, Mediator) {
    let db = mix::relational::fixtures::sample_db();
    let (catalog, sharded) =
        mix::wrapper::wrap_customers_orders_sharded(&db, ShardScheme::Hash { shards: 2 })
            .expect("fig2 spec covers both tables");
    let tracer = Arc::new(CollectingTracer::new());
    let handle = TracerHandle::new(Arc::clone(&tracer) as Arc<dyn Tracer>);
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder()
            .access(AccessMode::Lazy)
            .optimize(true)
            .tracer(handle)
            .build(),
    );
    (tracer, sharded, m)
}

/// A shard-key point lookup routes to exactly one shard: one SQL event,
/// `shards=1/2` on the rQ, `ShardQueriesRouted` up, no scatter merge.
#[test]
fn routed_point_query_targets_one_shard() {
    let (t, sharded, m) = traced_sharded_mediator();
    {
        let mut s = m.session();
        let p0 = s
            .query("FOR $C IN source(&root1)/customer WHERE $C/id/data() = \"XYZ123\" RETURN $C")
            .unwrap();
        let _ = s.d(p0).unwrap().unwrap();
        let explain = s.explain(p0);
        assert!(explain.contains("shards=1/2"), "{explain}");
    }
    let text = t.render();
    let expected = "\
cmd:query
  - sql server=db1 stmt=SELECT c1.id, c1.addr, c1.name FROM customer c1 WHERE c1.id = 'XYZ123' ORDER BY c1.id
cmd:d
  rQ node=1 depth=1 server=db1 sql=SELECT c1.id, c1.addr, c1.name FROM customer c1 WHERE c1.id = 'XYZ123' ORDER BY c1.id block=auto shards=1/2 repr=col pulls=1 tuples=1
    - row n=1
";
    assert_eq!(text, expected);
    assert_eq!(sharded.stats().get(Counter::ShardQueriesRouted), 1);
    assert_eq!(sharded.stats().get(Counter::ShardsTargeted), 1);
    assert_eq!(sharded.stats().get(Counter::ScatterMerges), 0);
}

/// A pushed-down co-partitioned join with no shard-key constant
/// scatters: one SQL event per shard, `shards=2/2` on the rQ,
/// `ScatterMerges` up, both shards targeted, nothing routed. Rows
/// still ship lazily — one navigation step pulls exactly one row.
#[test]
fn scatter_join_fans_out_and_merges() {
    let (t, sharded, m) = traced_sharded_mediator();
    {
        let mut s = m.session();
        let p0 = s.query(QJ).unwrap();
        let _ = s.d(p0).unwrap().unwrap();
        let explain = s.explain(p0);
        assert!(explain.contains("shards=2/2"), "{explain}");
    }
    let text = t.render();
    let expected = "\
cmd:query
  - sql server=db1 stmt=SELECT c1.id, c1.addr, c1.name, o1.orid, o1.cid, o1.value FROM customer c1, orders o1 WHERE c1.id = o1.cid ORDER BY c1.id, o1.orid
  - sql server=db1 stmt=SELECT c1.id, c1.addr, c1.name, o1.orid, o1.cid, o1.value FROM customer c1, orders o1 WHERE c1.id = o1.cid ORDER BY c1.id, o1.orid
cmd:d
  crElt node=1 depth=1 pulls=1 tuples=1
    gBy node=2 depth=2 mode=presorted pulls=1 tuples=1
      rQ node=3 depth=3 server=db1 sql=SELECT c1.id, c1.addr, c1.name, o1.orid, o1.cid, o1.value FROM customer c1, orders o1 WHERE c1.id = o1.cid ORDER BY c1.id, o1.orid block=auto shards=2/2 repr=col pulls=1 tuples=1
        - row n=1
";
    assert_eq!(text, expected);
    assert_eq!(sharded.stats().get(Counter::ScatterMerges), 1);
    assert_eq!(sharded.stats().get(Counter::ShardsTargeted), 2);
    assert_eq!(sharded.stats().get(Counter::ShardQueriesRouted), 0);
}

#[test]
fn explain_renders_three_plans_with_counts() {
    let (_t, m) = traced_mediator(AccessMode::Lazy, true, true);
    let mut s = m.session();
    let p0 = s.query(QJ).unwrap();
    let before = s.explain(p0);
    assert!(before.contains("== logical plan =="), "{before}");
    assert!(before.contains("== optimized plan =="), "{before}");
    assert!(before.contains("== physical plan =="), "{before}");
    // Nothing navigated yet: every operator is unpulled.
    assert!(before.contains("[never pulled]"), "{before}");
    let _ = s.d(p0).unwrap().unwrap();
    let after = s.explain(p0);
    assert!(after.contains("[pulls=1 tuples=1]"), "{after}");
}
