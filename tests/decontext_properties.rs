//! Deterministic property checks for queries-in-place: for generated
//! databases and navigation targets, the decontextualized (optimized)
//! query returns exactly what querying the materialized subtree
//! returns.

use mix::prelude::*;
use mix::relational::fixtures::Lcg;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn content_only(rendered: &str) -> String {
    rendered
        .lines()
        .map(|l| {
            let trimmed = l.trim_start();
            let indent = &l[..l.len() - trimmed.len()];
            let rest = match trimmed.strip_prefix('&') {
                Some(r) => r.split_once(' ').map(|(_, rest)| rest).unwrap_or(""),
                None => trimmed,
            };
            format!("{indent}{rest}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// q(query, node) ≡ q_materialized(query, node) on generated data,
/// varying customers, thresholds and the navigation target.
#[test]
fn decontext_equals_materialized_subtree() {
    let mut rng = Lcg(41);
    for case in 0..16u64 {
        let n_customers = 2 + rng.below(13) as usize;
        let orders_per = 1 + rng.below(5) as usize;
        let seed = rng.below(300);
        let pick = rng.below(15) as usize;
        let threshold = rng.below(100_000) as i64;
        let op = if rng.below(2) == 0 { "<" } else { ">" };
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        let m = Mediator::new(catalog);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        // Navigate to the pick-th CustRec (wrapping around).
        let recs = s.children(p0).unwrap();
        assert!(!recs.is_empty());
        let target = recs[pick % recs.len()];
        let q = format!(
            "FOR $O IN document(root)/OrderInfo WHERE $O/order/value {op} {threshold} RETURN $O"
        );
        let a = s.q(&q, target).unwrap();
        let b = s.q_materialized(&q, target).unwrap();
        assert_eq!(
            content_only(&s.render(a)),
            content_only(&s.render(b)),
            "case {case}: n={n_customers} per={orders_per} seed={seed} {op} {threshold}"
        );
    }
}

/// Composition from the root ≡ refiltering the materialized result.
#[test]
fn composition_equals_materialized_root() {
    let mut rng = Lcg(43);
    for case in 0..16u64 {
        let n_customers = 2 + rng.below(10) as usize;
        let orders_per = 1 + rng.below(4) as usize;
        let seed = rng.below(300);
        let threshold = rng.below(100_000) as i64;
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        let m = Mediator::new(catalog);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let q = format!(
            "FOR $R IN document(root)/CustRec $S IN $R/OrderInfo \
             WHERE $S/order/value > {threshold} RETURN $R"
        );
        let a = s.q(&q, p0).unwrap();
        let b = s.q_materialized(&q, p0).unwrap();
        assert_eq!(
            content_only(&s.render(a)),
            content_only(&s.render(b)),
            "case {case}: n={n_customers} per={orders_per} seed={seed} thr={threshold}"
        );
    }
}
