//! Property tests for queries-in-place: for random databases and
//! random navigation targets, the decontextualized (optimized) query
//! returns exactly what querying the materialized subtree returns.

use mix::prelude::*;
use proptest::prelude::*;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn content_only(rendered: &str) -> String {
    rendered
        .lines()
        .map(|l| {
            let trimmed = l.trim_start();
            let indent = &l[..l.len() - trimmed.len()];
            let rest = match trimmed.strip_prefix('&') {
                Some(r) => r.split_once(' ').map(|(_, rest)| rest).unwrap_or(""),
                None => trimmed,
            };
            format!("{indent}{rest}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// q(query, node) ≡ q_materialized(query, node) on random data,
    /// random customers, random thresholds.
    #[test]
    fn decontext_equals_materialized_subtree(
        n_customers in 2usize..15,
        orders_per in 1usize..6,
        seed in 0u64..300,
        pick in 0usize..15,
        threshold in 0i64..100_000,
        below in any::<bool>(),
    ) {
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        let m = Mediator::new(catalog);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        // Navigate to the pick-th CustRec (wrapping around).
        let recs = s.children(p0);
        prop_assume!(!recs.is_empty());
        let target = recs[pick % recs.len()];
        let op = if below { "<" } else { ">" };
        let q = format!(
            "FOR $O IN document(root)/OrderInfo WHERE $O/order/value {op} {threshold} RETURN $O"
        );
        let a = s.q(&q, target).unwrap();
        let b = s.q_materialized(&q, target).unwrap();
        prop_assert_eq!(content_only(&s.render(a)), content_only(&s.render(b)));
    }

    /// Composition from the root ≡ refiltering the materialized result.
    #[test]
    fn composition_equals_materialized_root(
        n_customers in 2usize..12,
        orders_per in 1usize..5,
        seed in 0u64..300,
        threshold in 0i64..100_000,
    ) {
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        let m = Mediator::new(catalog);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let q = format!(
            "FOR $R IN document(root)/CustRec $S IN $R/OrderInfo \
             WHERE $S/order/value > {threshold} RETURN $R"
        );
        let a = s.q(&q, p0).unwrap();
        let b = s.q_materialized(&q, p0).unwrap();
        prop_assert_eq!(content_only(&s.render(a)), content_only(&s.render(b)));
    }
}
