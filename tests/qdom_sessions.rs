//! Longer QDOM sessions: chained queries-in-place, multiple sources,
//! XML file sources, and the API's error paths.

use mix::prelude::*;
use mix_repro::datagen::auction_db;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

#[test]
fn chained_queries_in_place() {
    // query → navigate → refine from root → navigate → query from node
    // → query again from the *new* result's root.
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let m = Mediator::new(catalog);
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let p4 = s
        .q(
            "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"Z\" RETURN $P",
            p0,
        )
        .unwrap();
    assert_eq!(s.child_count(p4).unwrap(), 2);
    let p5 = s.d(p4).unwrap().unwrap();
    let p9 = s
        .q(
            "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 0 RETURN $O",
            p5,
        )
        .unwrap();
    assert_eq!(s.child_count(p9).unwrap(), 1); // DEF345 has one order
                                               // Compose once more from the newest result's root.
    let p10 = s
        .q(
            "FOR $X IN document(root)/OrderInfo WHERE $X/order/value < 1000 RETURN $X",
            p9,
        )
        .unwrap();
    assert_eq!(s.child_count(p10).unwrap(), 1); // the 500 order again
}

#[test]
fn auction_session_multiple_refinements() {
    let (catalog, _) = auction_db(60, 5, 77);
    let m = Mediator::new(catalog);
    let mut s = m.session();
    let p0 = s
        .query(
            "FOR $C IN document(cameras)/camera $L IN document(lenses)/lens \
         WHERE $C/id/data() = $L/camid/data() AND $C/price/data() < 500 \
         RETURN <Listing> $C <Lens> $L </Lens> {$L} </Listing> {$C}",
        )
        .unwrap();
    let all = s.child_count(p0).unwrap();
    assert!(all > 0);
    let p1 = s
        .q(
            "FOR $P IN document(root)/Listing WHERE $P/camera/rating >= 2 RETURN $P",
            p0,
        )
        .unwrap();
    let rated = s.child_count(p1).unwrap();
    assert!(rated <= all);
    if let Some(listing) = s.d(p1).unwrap() {
        let lenses = s
            .q(
                "FOR $L IN document(root)/Lens WHERE $L/lens/cost < 800 RETURN $L",
                listing,
            )
            .unwrap();
        assert_eq!(s.child_count(lenses).unwrap(), 5); // every lens qualifies
    }
}

#[test]
fn xml_file_source_sessions() {
    let mut catalog = Catalog::new();
    catalog.register_xml(
        mix::xml::parse_document(
            "books",
            r#"<list>
                 <book oid="B1"><title>Mediators</title><year>1992</year></book>
                 <book oid="B2"><title>XMAS</title><year>2000</year></book>
                 <book oid="B3"><title>QDOM</title><year>2002</year></book>
               </list>"#,
        )
        .unwrap(),
    );
    let m = Mediator::new(catalog);
    let mut s = m.session();
    let p = s
        .query("FOR $B IN document(books)/book WHERE $B/year > 1999 RETURN <hit> $B </hit> {$B}")
        .unwrap();
    assert_eq!(s.child_count(p).unwrap(), 2);
    let hit = s.d(p).unwrap().unwrap();
    assert_eq!(s.fl(hit).unwrap().unwrap().as_str(), "hit");
    let book = s.d(hit).unwrap().unwrap();
    assert_eq!(s.oid(book).to_string(), "&B2");
    // In-place query from a constructed node over a file source works
    // too — the whole plan just runs at the mediator.
    let refined = s
        .q(
            "FOR $B IN document(root)/book WHERE $B/year > 2001 RETURN $B",
            hit,
        )
        .unwrap();
    assert_eq!(s.child_count(refined).unwrap(), 0); // B2 is from 2000
}

#[test]
fn error_paths_are_reported() {
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let m = Mediator::new(catalog);
    let mut s = m.session();
    // Unknown source.
    assert!(s.query("FOR $X IN document(nosuch)/a RETURN $X").is_err());
    // Syntax error.
    assert!(s.query("FOR bad syntax").is_err());
    // Unbound variable.
    assert!(s
        .query("FOR $C IN source(&root1)/customer RETURN $D")
        .is_err());
    // document(root) outside q().
    assert!(s.query("FOR $X IN document(root)/a RETURN $X").is_err());
    // q() from a leaf (no skolem context).
    let p0 = s.query(Q1).unwrap();
    let rec = s.d(p0).unwrap().unwrap();
    let cust = s.d(rec).unwrap().unwrap(); // a source-copied customer node
    let err = s
        .q("FOR $X IN document(root)/id RETURN $X", cust)
        .unwrap_err();
    assert!(err.to_string().contains("constructed"), "{err}");
}

#[test]
fn navigation_is_stable_and_repeatable() {
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let m = Mediator::new(catalog);
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let a1 = s.d(p0).unwrap().unwrap();
    let a2 = s.d(p0).unwrap().unwrap();
    assert_eq!(a1, a2);
    assert_eq!(s.oid(a1), s.oid(a2));
    // Deep revisits produce identical handles.
    let b1 = s.d(a1).unwrap().unwrap();
    let _ = s.r(b1);
    let b2 = s.d(a1).unwrap().unwrap();
    assert_eq!(b1, b2);
}

#[test]
fn unsatisfiable_in_place_query_yields_empty_result() {
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let m = Mediator::new(catalog);
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let p = s
        .q("FOR $X IN document(root)/NoSuchThing RETURN $X", p0)
        .unwrap();
    assert_eq!(s.child_count(p).unwrap(), 0);
    assert!(s.fl(p).unwrap().is_some());
}

#[test]
fn eager_sessions_support_decontextualization_too() {
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder().access(AccessMode::Eager).build(),
    );
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let rec = s.d(p0).unwrap().unwrap();
    let p = s
        .q(
            "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 0 RETURN $O",
            rec,
        )
        .unwrap();
    assert_eq!(s.child_count(p).unwrap(), 1);
}

#[test]
fn federated_mediators_stay_lazy() {
    // Section 4: "a MIX mediator can be such a source to another MIX
    // mediator" — and the whole stack stays navigation-driven.
    let (lower_catalog, db) = mix_repro::datagen::customers_orders(500, 2, 99);
    let stats = db.stats().clone();
    let lower = Mediator::new(lower_catalog);
    let mut ls = lower.session();
    let view_root = ls.query(Q1).unwrap();

    let mut upper_catalog = Catalog::new();
    upper_catalog.register_nav("custview", ls.export_result(view_root, "custview"));
    let upper = Mediator::new(upper_catalog);
    let mut us = upper.session();
    stats.reset();
    let p = us
        .query("FOR $R IN document(custview)/CustRec RETURN <Account> $R </Account> {$R}")
        .unwrap();
    assert_eq!(
        stats.get(Counter::TuplesShipped),
        0,
        "still virtual after two queries"
    );
    let a1 = us.d(p).unwrap().unwrap();
    assert_eq!(us.fl(a1).unwrap().unwrap().as_str(), "Account");
    let shipped_one = stats.get(Counter::TuplesShipped);
    assert!(
        shipped_one <= 6,
        "one account ⇒ a handful of tuples, got {shipped_one}"
    );
    // Draining everything ships the rest.
    let mut n = 1;
    let mut cur = us.r(a1).unwrap();
    while let Some(c) = cur {
        n += 1;
        cur = us.r(c).unwrap();
    }
    assert_eq!(n, 500);
    assert!(stats.get(Counter::TuplesShipped) >= 1000);
    // The federated content matches the lower view's content.
    let inner = us.d(a1).unwrap().unwrap();
    assert_eq!(us.fl(inner).unwrap().unwrap().as_str(), "CustRec");
}

#[test]
fn schema_prune_avoids_sql_entirely() {
    // The paper's source-schema extension: a query down a path the
    // wrapper schema cannot produce issues NO SQL at all.
    let (catalog, db) = mix::wrapper::fig2_catalog();
    let stats = db.stats().clone();
    let m = Mediator::new(catalog);
    let mut s = m.session();
    stats.reset();
    let p = s
        .query("FOR $C IN source(&root1)/customer $X IN $C/bogus RETURN $X")
        .unwrap();
    assert_eq!(s.child_count(p).unwrap(), 0);
    assert_eq!(
        stats.get(Counter::SqlQueries),
        0,
        "no SQL for a schema-impossible query"
    );
    // Sanity: a schema-valid query does issue SQL.
    let p2 = s
        .query("FOR $C IN source(&root1)/customer $X IN $C/name RETURN $X")
        .unwrap();
    assert_eq!(s.child_count(p2).unwrap(), 2);
    assert!(stats.get(Counter::SqlQueries) > 0);
}

#[test]
fn decontextualized_query_ships_single_sql() {
    // The full Section 5 + Section 6 pipeline: an in-place query from a
    // CustRec node becomes ONE pushed SQL statement carrying the node's
    // key, with only restructuring left at the mediator.
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let m = Mediator::new(catalog);
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let p1 = s.d(p0).unwrap().unwrap();
    let p9 = s
        .q(
            "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
            p1,
        )
        .unwrap();
    let text = s.result_info(p9).exec_plan.render();
    assert_eq!(text.matches("rQ(").count(), 1, "{text}");
    assert!(text.contains("'DEF345'"), "{text}");
    assert!(text.contains("< 600"), "{text}");
    assert_eq!(s.child_count(p9).unwrap(), 1);
}

#[test]
fn shared_plan_cache_never_crosses_backends() {
    // Regression: the shared plan-cache key must include backend
    // identity. Two mediators over *different* databases (or different
    // shard layouts of the same data) issue identical query texts at
    // identical skolem shapes; a cached decontextualized template bakes
    // in catalog-specific split decisions, so replaying one mediator's
    // template in the other is unsound even when it happens to run.
    use std::sync::Arc;
    let cache = Arc::new(SharedPlanCache::new(2, 16));
    let run = |catalog: Catalog| {
        let opts = MediatorOptions::builder()
            .shared_plan_cache(Arc::clone(&cache))
            .build();
        let m = Mediator::with_options(catalog, opts);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        let p9 = s
            .q(
                "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
                p1,
            )
            .unwrap();
        assert_eq!(s.child_count(p9).unwrap(), 1);
    };
    let hits = || cache.stats().get(Counter::PlanCacheHits);
    let misses = || cache.stats().get(Counter::PlanCacheMisses);

    // First mediator compiles and caches the navigation template...
    let (cat_a, db_a) = mix::wrapper::fig2_catalog();
    run(cat_a);
    assert_eq!((hits(), misses()), (0, 1));
    // ...and a second mediator over the *same* database hits it (the
    // fingerprint is stable across catalog clones).
    run(mix::wrapper::wrap_customers_orders(db_a.clone()));
    assert_eq!((hits(), misses()), (1, 1));
    // A mediator over a *different* database — same schema, same server
    // name, same query text — must miss and compile its own template.
    let (cat_b, _db_b) = mix::wrapper::fig2_catalog();
    run(cat_b);
    assert_eq!((hits(), misses()), (1, 2));
    // So must a *sharded layout of the very same data*: the split
    // decisions (and routed SQL) depend on the layout.
    let (cat_sharded, _handle) =
        mix::wrapper::wrap_customers_orders_sharded(&db_a, ShardScheme::Hash { shards: 2 })
            .unwrap();
    run(cat_sharded);
    assert_eq!((hits(), misses()), (1, 3));
}
