//! Deterministic equivalence checks: the implementation's load-bearing
//! equivalences, exercised over seeded generated databases.
//!
//! * lazy (navigation-driven) evaluation ≡ eager evaluation;
//! * optimized (rewritten + SQL-pushed) plans ≡ naive plans;
//! * the pipelined SQL executor ≡ the naive reference evaluator;
//! * rewriting is sound on composed plans.

use mix::prelude::*;
use mix::relational::fixtures::Lcg;

/// Query templates over the customers/orders schema, parameterized by
/// an integer threshold.
const TEMPLATES: &[&str] = &[
    // plain scan
    "FOR $C IN source(&root1)/customer RETURN $C",
    // selection on a leaf value
    "FOR $O IN document(root2)/order WHERE $O/value > {N} RETURN $O",
    // join + grouping (the Q1 shape)
    "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}",
    // join + selection, bare-var return
    "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() AND $O/value > {N} RETURN $C",
    // element construction without grouping
    "FOR $O IN document(root2)/order WHERE $O/value <= {N} \
     RETURN <cheap> $O </cheap>",
];

fn instantiate(template: &str, n: i64) -> String {
    template.replace("{N}", &n.to_string())
}

/// Strip oids from a rendering (plan rewrites may rename skolem
/// variable tags; content must still agree).
fn content_only(rendered: &str) -> String {
    rendered
        .lines()
        .map(|l| {
            let trimmed = l.trim_start();
            let indent = &l[..l.len() - trimmed.len()];
            let rest = match trimmed.strip_prefix('&') {
                Some(r) => r.split_once(' ').map(|(_, rest)| rest).unwrap_or(""),
                None => trimmed,
            };
            format!("{indent}{rest}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_with(options: MediatorOptions, catalog: &Catalog, query: &str) -> String {
    let mediator = Mediator::with_options(catalog.clone(), options);
    let mut s = mediator.session();
    let p = s.query(query).expect("query runs");
    s.render(p)
}

fn opts(optimize: bool, access: AccessMode) -> MediatorOptions {
    MediatorOptions::builder()
        .access(access)
        .optimize(optimize)
        .build()
}

/// Lazy ≡ eager and optimized ≡ naive on generated databases.
#[test]
fn four_way_equivalence() {
    let mut rng = Lcg(2002);
    for case in 0..24u64 {
        let n_customers = 1 + rng.below(11) as usize;
        let orders_per = rng.below(5) as usize;
        let seed = rng.below(500);
        let template_idx = (case % TEMPLATES.len() as u64) as usize;
        let threshold = rng.below(100_000) as i64;
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        let query = instantiate(TEMPLATES[template_idx], threshold);
        let reference = content_only(&run_with(opts(false, AccessMode::Eager), &catalog, &query));
        for (optimize, access) in [
            (false, AccessMode::Lazy),
            (true, AccessMode::Eager),
            (true, AccessMode::Lazy),
        ] {
            let got = content_only(&run_with(opts(optimize, access), &catalog, &query));
            assert_eq!(
                got, reference,
                "case {case}: optimize={optimize} access={access:?} query={query}"
            );
        }
    }
}

/// The hash join/semi-join kernels produce the *identical tuple
/// sequence* as the nested-loop kernels — same content, same oids, same
/// order — across generated databases, both access modes, and both
/// optimizer settings. (The hash kernels preserve left-major order by
/// keeping buckets in build-input arrival order; this pins that claim.)
#[test]
fn hash_and_nested_loop_join_kernels_agree() {
    let mut rng = Lcg(909);
    for case in 0..20u64 {
        let n_customers = 1 + rng.below(12) as usize;
        let orders_per = rng.below(5) as usize;
        let seed = rng.below(500);
        let threshold = rng.below(100_000) as i64;
        let template_idx = (case % TEMPLATES.len() as u64) as usize;
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        let query = instantiate(TEMPLATES[template_idx], threshold);
        for optimize in [false, true] {
            for access in [AccessMode::Lazy, AccessMode::Eager] {
                let mut renders = Vec::new();
                for hash_joins in [true, false] {
                    let options = MediatorOptions::builder()
                        .access(access)
                        .optimize(optimize)
                        .hash_joins(hash_joins)
                        .build();
                    renders.push(run_with(options, &catalog, &query));
                }
                // Exact equality: oids and sibling order included.
                assert_eq!(
                    renders[0], renders[1],
                    "case {case}: optimize={optimize} access={access:?} query={query}"
                );
            }
        }
    }
}

/// All four `groupBy` kernels (presorted stateless, stateful, hash,
/// auto) produce identical results on key-contiguous inputs — the Q1
/// shape, whose gBy inputs the sortedness analysis proves contiguous —
/// and the order-insensitive kernels also agree with each other on
/// arbitrary inputs.
#[test]
fn gby_kernels_agree() {
    let mut rng = Lcg(424);
    for case in 0..10u64 {
        let n_customers = 1 + rng.below(9) as usize;
        let orders_per = rng.below(4) as usize;
        let seed = rng.below(300);
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        // The Q1 join+group shape (provably contiguous gBy inputs).
        let query = instantiate(TEMPLATES[2], 0);
        for optimize in [false, true] {
            let reference = run_with(
                MediatorOptions::builder()
                    .optimize(optimize)
                    .gby(GByMode::StatelessPresorted)
                    .build(),
                &catalog,
                &query,
            );
            for gby in [GByMode::Stateful, GByMode::Hash, GByMode::Auto] {
                let got = run_with(
                    MediatorOptions::builder()
                        .optimize(optimize)
                        .gby(gby)
                        .build(),
                    &catalog,
                    &query,
                );
                assert_eq!(
                    got, reference,
                    "case {case}: optimize={optimize} gby={gby:?}"
                );
            }
        }
    }
}

/// The columnar block representation is invisible: across block
/// policies and prefetch settings, the typed-column-vector path and the
/// boxed-row ablation produce the *identical rendering* (oids and
/// sibling order included) and identical shipped-data accounting.
#[test]
fn columnar_and_row_representations_agree() {
    let mut rng = Lcg(31337);
    for case in 0..10u64 {
        let n_customers = 1 + rng.below(12) as usize;
        let orders_per = rng.below(5) as usize;
        let seed = rng.below(500);
        let threshold = rng.below(100_000) as i64;
        let template_idx = (case % TEMPLATES.len() as u64) as usize;
        let query = instantiate(TEMPLATES[template_idx], threshold);
        for block in [BlockPolicy::Off, BlockPolicy::Fixed(8), BlockPolicy::Auto] {
            for prefetch in [PrefetchPolicy::Off, PrefetchPolicy::Auto] {
                let mut runs = Vec::new();
                for columnar in [true, false] {
                    let (catalog, db) =
                        mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
                    let stats = db.stats().clone();
                    let options = MediatorOptions::builder()
                        .block(block)
                        .prefetch(prefetch)
                        .columnar(columnar)
                        .build();
                    let rendered = run_with(options, &catalog, &query);
                    runs.push((
                        rendered,
                        stats.get(Counter::TuplesShipped),
                        stats.get(Counter::BlocksShipped),
                    ));
                }
                assert_eq!(
                    runs[0], runs[1],
                    "case {case}: block={block:?} prefetch={prefetch:?} query={query}"
                );
            }
        }
    }
}

/// The pipelined SQL executor agrees with the cartesian-product
/// reference evaluator.
#[test]
fn sql_executor_matches_reference() {
    let mut rng = Lcg(77);
    for case in 0..25u64 {
        let n_customers = 1 + rng.below(14) as usize;
        let orders_per = rng.below(5) as usize;
        let seed = rng.below(500);
        let threshold = rng.below(100_000) as i64;
        let qidx = (case % 5) as usize;
        let db = mix::relational::fixtures::gen_db(n_customers, orders_per, seed);
        let sqls = [
            format!("SELECT * FROM orders WHERE value > {threshold}"),
            "SELECT c.id, o.orid FROM customer c, orders o WHERE c.id = o.cid ORDER BY c.id, o.orid".to_string(),
            format!("SELECT DISTINCT c.id FROM customer c, orders o WHERE c.id = o.cid AND o.value > {threshold}"),
            "SELECT c1.id FROM customer c1, customer c2 WHERE c1.id = c2.id".to_string(),
            format!("SELECT o.orid, o.value FROM orders o WHERE o.value <= {threshold} ORDER BY o.orid"),
        ];
        let stmt = mix::relational::parse_sql(&sqls[qidx]).unwrap();
        let mut fast = db.execute(&stmt).unwrap().collect_all().unwrap();
        let mut slow = mix::relational::reference::eval_reference(&db, &stmt).unwrap();
        if stmt.order_by.is_empty() {
            let key = |r: &Vec<Value>| {
                r.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            };
            fast.sort_by_key(key);
            slow.sort_by_key(key);
        }
        assert_eq!(fast, slow, "case {case}: {}", sqls[qidx]);
    }
}

/// Rewriting composed plans is sound: the optimized composed query
/// and the naive composed query produce the same content.
#[test]
fn composition_rewrite_soundness() {
    let mut rng = Lcg(555);
    for case in 0..12u64 {
        let n_customers = 1 + rng.below(9) as usize;
        let orders_per = 1 + rng.below(3) as usize;
        let seed = rng.below(200);
        let threshold = rng.below(100_000) as i64;
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        const VIEW: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
             WHERE $C/id/data() = $O/cid/data() \
             RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
        let report = format!(
            "FOR $R IN document(v)/CustRec $S IN $R/OrderInfo \
             WHERE $S/order/value > {threshold} RETURN $R"
        );
        let mut results = Vec::new();
        for optimize in [true, false] {
            let mut mediator =
                Mediator::with_options(catalog.clone(), opts(optimize, AccessMode::Lazy));
            mediator.define_view("v", VIEW).unwrap();
            let mut s = mediator.session();
            let p = s.query(&report).unwrap();
            results.push(content_only(&s.render(p)));
        }
        assert_eq!(results[0], results[1], "case {case}: thr={threshold}");
    }
}
