//! Property tests: the implementation's load-bearing equivalences.
//!
//! * lazy (navigation-driven) evaluation ≡ eager evaluation;
//! * optimized (rewritten + SQL-pushed) plans ≡ naive plans;
//! * the pipelined SQL executor ≡ the naive reference evaluator;
//! * rewriting is sound on composed plans.

use mix::prelude::*;
use proptest::prelude::*;

/// Query templates over the customers/orders schema, parameterized by
/// an integer threshold.
const TEMPLATES: &[&str] = &[
    // plain scan
    "FOR $C IN source(&root1)/customer RETURN $C",
    // selection on a leaf value
    "FOR $O IN document(root2)/order WHERE $O/value > {N} RETURN $O",
    // join + grouping (the Q1 shape)
    "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}",
    // join + selection, bare-var return
    "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() AND $O/value > {N} RETURN $C",
    // element construction without grouping
    "FOR $O IN document(root2)/order WHERE $O/value <= {N} \
     RETURN <cheap> $O </cheap>",
];

fn instantiate(template: &str, n: i64) -> String {
    template.replace("{N}", &n.to_string())
}

/// Strip oids from a rendering (plan rewrites may rename skolem
/// variable tags; content must still agree).
fn content_only(rendered: &str) -> String {
    rendered
        .lines()
        .map(|l| {
            let trimmed = l.trim_start();
            let indent = &l[..l.len() - trimmed.len()];
            let rest = match trimmed.strip_prefix('&') {
                Some(r) => r.split_once(' ').map(|(_, rest)| rest).unwrap_or(""),
                None => trimmed,
            };
            format!("{indent}{rest}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_with(
    optimize: bool,
    access: AccessMode,
    catalog: &Catalog,
    query: &str,
) -> String {
    let mediator = Mediator::with_options(
        catalog.clone(),
        MediatorOptions { access, optimize, ..Default::default() },
    );
    let mut s = mediator.session();
    let p = s.query(query).expect("query runs");
    s.render(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lazy ≡ eager and optimized ≡ naive on random databases.
    #[test]
    fn four_way_equivalence(
        n_customers in 1usize..12,
        orders_per in 0usize..5,
        seed in 0u64..500,
        template_idx in 0usize..TEMPLATES.len(),
        threshold in 0i64..100_000,
    ) {
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        let query = instantiate(TEMPLATES[template_idx], threshold);
        let reference = content_only(&run_with(false, AccessMode::Eager, &catalog, &query));
        for (optimize, access) in [
            (false, AccessMode::Lazy),
            (true, AccessMode::Eager),
            (true, AccessMode::Lazy),
        ] {
            let got = content_only(&run_with(optimize, access, &catalog, &query));
            prop_assert_eq!(
                &got, &reference,
                "optimize={} access={:?} query={}", optimize, access, query
            );
        }
    }

    /// The pipelined SQL executor agrees with the cartesian-product
    /// reference evaluator.
    #[test]
    fn sql_executor_matches_reference(
        n_customers in 1usize..15,
        orders_per in 0usize..5,
        seed in 0u64..500,
        threshold in 0i64..100_000,
        qidx in 0usize..5,
    ) {
        let db = mix::relational::fixtures::gen_db(n_customers, orders_per, seed);
        let sqls = [
            format!("SELECT * FROM orders WHERE value > {threshold}"),
            "SELECT c.id, o.orid FROM customer c, orders o WHERE c.id = o.cid ORDER BY c.id, o.orid".to_string(),
            format!("SELECT DISTINCT c.id FROM customer c, orders o WHERE c.id = o.cid AND o.value > {threshold}"),
            "SELECT c1.id FROM customer c1, customer c2 WHERE c1.id = c2.id".to_string(),
            format!("SELECT o.orid, o.value FROM orders o WHERE o.value <= {threshold} ORDER BY o.orid"),
        ];
        let stmt = mix::relational::parse_sql(&sqls[qidx]).unwrap();
        let mut fast = db.execute(&stmt).unwrap().collect_all();
        let mut slow = mix::relational::reference::eval_reference(&db, &stmt).unwrap();
        if stmt.order_by.is_empty() {
            let key = |r: &Vec<Value>| r.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\u{1}");
            fast.sort_by_key(key);
            slow.sort_by_key(key);
        }
        prop_assert_eq!(fast, slow);
    }

    /// Rewriting composed plans is sound: the optimized composed query
    /// and the naive composed query produce the same content.
    #[test]
    fn composition_rewrite_soundness(
        n_customers in 1usize..10,
        orders_per in 1usize..4,
        seed in 0u64..200,
        threshold in 0i64..100_000,
    ) {
        let (catalog, _db) = mix_repro::datagen::customers_orders(n_customers, orders_per, seed);
        const VIEW: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
             WHERE $C/id/data() = $O/cid/data() \
             RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
        let report = format!(
            "FOR $R IN document(v)/CustRec $S IN $R/OrderInfo \
             WHERE $S/order/value > {threshold} RETURN $R"
        );
        let mut results = Vec::new();
        for optimize in [true, false] {
            let mut mediator = Mediator::with_options(
                catalog.clone(),
                MediatorOptions { optimize, ..Default::default() },
            );
            mediator.define_view("v", VIEW).unwrap();
            let mut s = mediator.session();
            let p = s.query(&report).unwrap();
            results.push(content_only(&s.render(p)));
        }
        prop_assert_eq!(&results[0], &results[1]);
    }
}
