//! Every figure and table of the paper, regenerated and asserted.
//!
//! One test per artifact; the experiments harness (`cargo run -p
//! mix-bench --bin experiments -- figures`) prints the same artifacts
//! for visual comparison. See DESIGN.md §5 and EXPERIMENTS.md.

use mix::engine::eager;
use mix::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

const Q_FIG12: &str = "FOR $R in document(rootv)/CustRec $S in $R/OrderInfo \
     WHERE $S/order/value > 20000 RETURN $R";

fn fig2_mediator() -> Mediator {
    let (catalog, _) = mix::wrapper::fig2_catalog();
    Mediator::new(catalog)
}

/// Fig. 2: the XML view of the relational database.
#[test]
fn fig2_xml_database() {
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let root1 = catalog.materialized("root1").unwrap();
    let text = mix::xml::print::render_tree(&*root1, root1.root());
    // &root1 list over customer tuple elements with key oids and
    // id/addr/name fields.
    assert!(text.starts_with("&root1 list\n"), "{text}");
    assert!(text.contains("&XYZ123 customer"), "{text}");
    assert!(text.contains("addr = LosAngeles"), "{text}");
    assert!(text.contains("name = XYZInc."), "{text}");
    let root2 = catalog.materialized("root2").unwrap();
    let text2 = mix::xml::print::render_tree(&*root2, root2.root());
    assert!(text2.contains("&28904 order"), "{text2}");
    assert!(text2.contains("value = 2400"), "{text2}");
    assert!(text2.contains("cid = XYZ123"), "{text2}");
}

/// Fig. 3 under the Fig. 4 grammar: Q1 parses and round-trips.
#[test]
fn fig3_fig4_query_q1() {
    let q = parse_query(Q1).unwrap();
    assert_eq!(q.for_clause.len(), 2);
    assert_eq!(q.where_clause.len(), 1);
    let printed = mix::xquery::print_query(&q);
    assert_eq!(parse_query(&printed).unwrap(), q);
}

/// Fig. 5: the tree representation of binding lists.
#[test]
fn fig5_binding_list_tree() {
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let ctx = EvalContext::new(catalog, AccessMode::Eager);
    let plan = translate(&parse_query(Q1).unwrap()).unwrap();
    let mix::algebra::Op::TupleDestroy { input, .. } = &plan.root else {
        panic!()
    };
    let table = eager::eval_table(input, &ctx, &HashMap::new()).unwrap();
    let text = eager::render_binding_table(&ctx, &table);
    // Root `list`, `binding` children, variable nodes, and a nested
    // `set` for the group partition — the Fig. 5 shape.
    assert!(text.starts_with("list\n"), "{text}");
    assert!(text.contains("binding &b0"), "{text}");
    assert!(text.contains("$C\n"), "{text}");
    assert!(text.contains("set\n"), "{text}");
    assert!(text.contains("binding &n0"), "{text}");
}

/// Fig. 6: the XMAS plan for Q1.
#[test]
fn fig6_q1_plan() {
    let plan = translate(&parse_query(Q1).unwrap()).unwrap();
    validate(&plan).unwrap();
    let text = plan.render();
    let expected = [
        "tD($V, rootv)",
        "crElt(CustRec, f($C), $W -> $V)",
        "cat(list($C), $Z -> $W)",
        "apply(p, $X -> $Z)",
        "| tD($P)",
        "|   nSrc($X)",
        "gBy([$C] -> $X)",
        "crElt(OrderInfo, g($O), list($O) -> $P)",
        "join($1 = $2)",
        "getD($C.customer.id.data(), $1)",
        "getD($K.customer, $C)",
        "mksrc(root1, $K)",
        "getD($O.order.cid.data(), $2)",
        "getD($J.order, $O)",
        "mksrc(root2, $J)",
    ];
    for e in expected {
        assert!(text.contains(e), "missing {e:?} in:\n{text}");
    }
}

/// Fig. 7: the Q1 result with skolem ids.
#[test]
fn fig7_q1_result() {
    let m = fig2_mediator();
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let text = s.render(p0);
    assert!(text.contains("&($V,f(&XYZ123)) CustRec"), "{text}");
    assert!(text.contains("&($V,f(&DEF345)) CustRec"), "{text}");
    assert!(text.contains("&($P,g(&28904)) OrderInfo"), "{text}");
    assert!(text.contains("&($P,g(&87456)) OrderInfo"), "{text}");
    assert!(text.contains("&XYZ123 customer"), "{text}");
    assert!(text.contains("&28904 order"), "{text}");
    assert_eq!(text.matches("CustRec").count(), 2, "{text}");
    assert_eq!(text.matches("OrderInfo").count(), 3, "{text}");
}

/// Example 2.1: the full navigation + query-in-place session.
#[test]
fn example_2_1_session() {
    let m = fig2_mediator();
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let p1 = s.d(p0).unwrap().unwrap();
    let p2 = s.r(p1).unwrap().unwrap();
    let p3 = s.d(p1).unwrap().unwrap();
    assert_eq!(s.fl(p1).unwrap().unwrap().as_str(), "CustRec");
    assert_eq!(s.fl(p2).unwrap().unwrap().as_str(), "CustRec");
    assert_eq!(s.fl(p3).unwrap().unwrap().as_str(), "customer");
    // p4 = q(Q2, p0) — composition from the root.
    let p4 = s
        .q(
            "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"E\" RETURN $P",
            p0,
        )
        .unwrap();
    let p5 = s.d(p4).unwrap().unwrap();
    let p6 = s.d(p5).unwrap().unwrap();
    let p7 = s.r(p6).unwrap().unwrap();
    assert_eq!(s.fl(p6).unwrap().unwrap().as_str(), "customer");
    assert_eq!(s.fl(p7).unwrap().unwrap().as_str(), "OrderInfo");
    // p9 = q(Q3, p5) — decontextualized in-place query.
    let p9 = s
        .q(
            "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 600 RETURN $O",
            p5,
        )
        .unwrap();
    assert_eq!(s.child_count(p9).unwrap(), 1);
}

/// Figs. 8–9: the in-place query and its plan.
#[test]
fn fig9_in_place_query_plan() {
    let q = parse_query("FOR $O IN document(root)/orderInfo/order WHERE $O/value > 2000 RETURN $O")
        .unwrap();
    let plan = translate(&q).unwrap();
    validate(&plan).unwrap();
    let text = plan.render();
    assert!(text.contains("tD($O, rootv)"), "{text}");
    assert!(text.contains("mksrc(root, $K)"), "{text}");
    assert!(text.contains("getD($K.orderInfo.order, $O)"), "{text}");
    assert!(text.contains("select($1 > 2000)"), "{text}");
}

/// Fig. 10: the decontextualized plan with its fixing selection.
#[test]
fn fig10_decontextualized_plan() {
    let m = fig2_mediator();
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let p1 = s.d(p0).unwrap().unwrap(); // CustRec f(&DEF345)
    let p9 = s
        .q(
            "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 0 RETURN $O",
            p1,
        )
        .unwrap();
    // The fixing selection reached the SQL as a key predicate.
    let text = s.result_info(p9).exec_plan.render();
    assert!(text.contains("'DEF345'"), "{text}");
}

/// Figs. 12–13: naive composition of the Fig. 12 query with the view.
#[test]
fn fig13_naive_composition() {
    let view = mix::algebra::translate_with_root(&parse_query(Q1).unwrap(), "rootv").unwrap();
    let q = translate(&parse_query(Q_FIG12).unwrap()).unwrap();
    let naive = mix::qdom::splice::compose(&q, "rootv", &view);
    validate(&naive).unwrap();
    assert!(
        naive.render().contains("mksrc(<view>, $K)"),
        "{}",
        naive.render()
    );
}

/// Figs. 14–21: the rewriting derivation applies the Table 2 rules.
#[test]
fn fig14_to_21_rewrite_derivation() {
    let view = mix::algebra::translate_with_root(&parse_query(Q1).unwrap(), "rootv").unwrap();
    let q = translate(&parse_query(Q_FIG12).unwrap()).unwrap();
    let naive = mix::qdom::splice::compose(&q, "rootv", &view);
    let out = rewrite(&naive);
    validate(&out.plan).unwrap();
    let rules = out.trace.rule_sequence();
    for expected in [
        "R11-td-mksrc",             // Fig. 13 → 14
        "R2-getd-crelt-exact",      // alias $R ≡ $V
        "R1-getd-crelt-push",       // Fig. 14 → 15
        "R5-getd-cat-push",         // Fig. 15 → 16
        "R9-join-introduction",     // Fig. 16 → 18
        "R3-getd-crelt-single",     // Fig. 18 → 19 (path into OrderInfo)
        "select-pushdown",          // Fig. 19
        "join-to-semijoin",         // Fig. 19 → 20
        "R12-semijoin-below-group", // Fig. 20 → 21
        "dead-elimination",
    ] {
        assert!(rules.contains(&expected), "missing {expected}: {rules:?}");
    }
}

/// Fig. 22: the split plan ships one DISTINCT self-join with the
/// presorted-gBy ORDER BY.
#[test]
fn fig22_final_sql() {
    let (catalog, _) = mix::wrapper::fig2_catalog();
    let view = mix::algebra::translate_with_root(&parse_query(Q1).unwrap(), "rootv").unwrap();
    let q = translate(&parse_query(Q_FIG12).unwrap()).unwrap();
    let naive = mix::qdom::splice::compose(&q, "rootv", &view);
    let out = optimize(&naive, &catalog);
    validate(&out.plan).unwrap();
    let text = out.plan.render();
    assert_eq!(text.matches("rQ(").count(), 1, "{text}");
    assert!(text.contains("SELECT DISTINCT"), "{text}");
    assert_eq!(text.matches("customer c").count(), 2, "{text}");
    assert_eq!(text.matches("orders o").count(), 2, "{text}");
    assert!(text.contains("> 20000"), "{text}");
    assert!(text.contains("ORDER BY c2.id, o2.orid"), "{text}");
    // And the Fig. 12 query over Fig. 2 data returns exactly XYZ123's
    // CustRec.
    let m = {
        let (catalog, _) = mix::wrapper::fig2_catalog();
        let mut m = Mediator::new(catalog);
        m.define_view("rootv", Q1).unwrap();
        m
    };
    let mut s = m.session();
    let p = s.query(Q_FIG12).unwrap();
    assert_eq!(s.child_count(p).unwrap(), 1);
    let rec = s.d(p).unwrap().unwrap();
    assert_eq!(s.oid(rec).to_string(), "&($V,f(&XYZ123))");
}

/// Table 1: the presorted stateless gBy — navigation discovers groups
/// incrementally and `r` on a group binding drains exactly that group.
#[test]
fn table1_stateless_gby_navigation() {
    use mix::engine::stream::build_stream;
    let (catalog, db) = mix::wrapper::fig2_catalog();
    let ctx = Arc::new(EvalContext::new(catalog, AccessMode::Lazy));
    let plan = translate(&parse_query(Q1).unwrap()).unwrap();
    let mix::algebra::Op::TupleDestroy { input, .. } = plan.root else {
        panic!()
    };
    let mut s = build_stream(&input, &ctx, &Arc::new(HashMap::new())).unwrap();
    let stats = db.stats().clone();
    // getRoot/d: the first group appears after pulling only its first
    // underlying tuple (plus the join's build side).
    let g1 = s.next().unwrap().unwrap();
    let after_first_group = stats.get(Counter::TuplesShipped);
    // r: the second group tuple requires draining group 1 underneath
    // (Table 1's `repeat r(bs) until keys differ` loop).
    let g2 = s.next().unwrap().unwrap();
    assert!(stats.get(Counter::TuplesShipped) >= after_first_group);
    assert!(s.next().unwrap().is_none());
    // Each group's partition holds that customer's orders.
    let ctx2 = &ctx;
    let part_of = |t: &mix::engine::LTuple| match t.get(&Name::new("X")) {
        Some(mix::engine::LVal::Part(p)) => p.clone(),
        _ => panic!("gBy output carries a partition"),
    };
    assert_eq!(part_of(&g1).force().unwrap().len(), 1); // DEF345
    assert_eq!(part_of(&g2).force().unwrap().len(), 2); // XYZ123
    let _ = ctx2;
}

/// Table 2: each rewrite rule has a dedicated unit test in
/// `mix-rewrite`; here we assert the full catalog of rule names is
/// exercised by the Fig. 13→22 derivation plus the unsatisfiable case.
#[test]
fn table2_rule_catalog() {
    let view = mix::algebra::translate_with_root(&parse_query(Q1).unwrap(), "rootv").unwrap();
    // Unsatisfiable composition exercises rule 4 + ⊥ propagation.
    let q =
        translate(&parse_query("FOR $R IN document(rootv)/Nothing RETURN $R").unwrap()).unwrap();
    let naive = mix::qdom::splice::compose(&q, "rootv", &view);
    let out = rewrite(&naive);
    // Empty propagates all the way up, but the result-root `tD` wrapper
    // survives so the answer document keeps its name.
    match &out.plan.root {
        mix::algebra::Op::TupleDestroy { input, root, .. } => {
            assert_eq!(
                root.as_ref().map(|n| n.to_string()).as_deref(),
                Some("rootv")
            );
            assert!(matches!(**input, mix::algebra::Op::Empty { .. }));
        }
        other => panic!("expected tD(empty) root, got {other:?}"),
    }
    let rules = out.trace.rule_sequence();
    assert!(rules.contains(&"R4-unsatisfiable"), "{rules:?}");
    assert!(rules.contains(&"empty-propagation"), "{rules:?}");
}
