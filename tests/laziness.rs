//! The paper's performance claims as hard assertions on the work
//! counters (the benchmark harness measures the same quantities over
//! parameter sweeps; these tests pin the *shape* of each claim).

use mix::prelude::*;
use mix_repro::datagen::customers_orders;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";

fn mediator(catalog: Catalog, optimize: bool, access: AccessMode) -> Mediator {
    Mediator::with_options(
        catalog,
        MediatorOptions::builder()
            .access(access)
            .optimize(optimize)
            .build(),
    )
}

/// E1: browsing k of N results ships ~k·(orders+1) tuples under lazy
/// evaluation, but the whole database under eager evaluation.
#[test]
fn e1_lazy_browse_ships_prefix_only() {
    let n = 300;
    let per = 4;
    let (catalog, db) = customers_orders(n, per, 11);
    let stats = db.stats().clone();

    // Lazy: browse 5 CustRecs shallowly.
    let m = mediator(catalog.clone(), true, AccessMode::Lazy);
    let mut s = m.session();
    stats.reset();
    let p0 = s.query(Q1).unwrap();
    let mut cur = s.d(p0).unwrap();
    for _ in 0..4 {
        cur = cur.and_then(|c| s.r(c).unwrap());
    }
    let lazy_shipped = stats.get(Counter::TuplesShipped);

    // Eager: the same query materializes everything up front.
    let m = mediator(catalog, true, AccessMode::Eager);
    let mut s = m.session();
    stats.reset();
    let _p0 = s.query(Q1).unwrap();
    let eager_shipped = stats.get(Counter::TuplesShipped);

    assert!(
        lazy_shipped * 5 < eager_shipped,
        "lazy={lazy_shipped} eager={eager_shipped}"
    );
    // Eager ships at least every joined row.
    assert!(eager_shipped >= (n * per) as u64);
}

/// E2: time-to-first-result under lazy evaluation is O(1) in source
/// tuples, independent of database size.
#[test]
fn e2_first_result_cost_independent_of_n() {
    let mut first_costs = Vec::new();
    for n in [50usize, 500, 2000] {
        let (catalog, db) = customers_orders(n, 2, 3);
        let stats = db.stats().clone();
        let m = mediator(catalog, true, AccessMode::Lazy);
        let mut s = m.session();
        stats.reset();
        let p0 = s.query(Q1).unwrap();
        let _first = s.d(p0).unwrap().unwrap();
        first_costs.push(stats.get(Counter::TuplesShipped));
    }
    // Identical prefix cost at every scale.
    assert_eq!(first_costs[0], first_costs[1], "{first_costs:?}");
    assert_eq!(first_costs[1], first_costs[2], "{first_costs:?}");
}

/// E3: an in-place query via decontextualization ships far less than
/// materializing the context subtree and querying the copy.
#[test]
fn e3_decontext_beats_materialize() {
    let (catalog, db) = customers_orders(200, 30, 5);
    let stats = db.stats().clone();
    let m = mediator(catalog, true, AccessMode::Lazy);
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let p1 = s.d(p0).unwrap().unwrap(); // first CustRec (30 orders below)
    let q = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 99000 RETURN $O";

    let med_stats = s.ctx().stats().clone();
    stats.reset();
    med_stats.reset();
    let a = s.q(q, p1).unwrap();
    let _ = s.child_count(a).unwrap();
    let decontext_shipped = stats.get(Counter::TuplesShipped);
    let decontext_built = med_stats.get(Counter::NodesBuilt);

    stats.reset();
    med_stats.reset();
    let b = s.q_materialized(q, p1).unwrap();
    let _ = s.child_count(b).unwrap();
    let materialize_built = med_stats.get(Counter::NodesBuilt);

    // The materializing baseline copies the full 30-order subtree to
    // the mediator; decontextualization only touches the matching
    // orders (high selectivity ⇒ almost none).
    assert!(
        materialize_built > 30 * 4,
        "materialize_built={materialize_built}"
    );
    assert!(
        decontext_built < materialize_built,
        "decontext_built={decontext_built} materialize_built={materialize_built}"
    );
    // And the decontextualized SQL ships only the context's matching
    // rows, not whole relations.
    assert!(
        decontext_shipped < 30,
        "decontext_shipped={decontext_shipped}"
    );
}

/// E4: composition optimization ships the most restrictive query — the
/// naive composed plan ships entire relations.
#[test]
fn e4_pushdown_ships_less() {
    let (catalog, db) = customers_orders(400, 6, 9);
    let stats = db.stats().clone();
    const VIEW: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
    let report = "FOR $R IN document(v)/CustRec $S IN $R/OrderInfo \
         WHERE $S/order/value > 99500 RETURN $R";
    let mut shipped = Vec::new();
    for optimize in [true, false] {
        let mut m = mediator(catalog.clone(), optimize, AccessMode::Lazy);
        m.define_view("v", VIEW).unwrap();
        let mut s = m.session();
        stats.reset();
        let p = s.query(report).unwrap();
        let _ = s.child_count(p).unwrap();
        shipped.push(stats.get(Counter::TuplesShipped));
    }
    let (optimized, naive) = (shipped[0], shipped[1]);
    assert!(optimized * 3 < naive, "optimized={optimized} naive={naive}");
}

/// E5: rewriting removes unnecessary element construction at the
/// mediator (nodes built for objects the query discards).
#[test]
fn e5_mediator_builds_fewer_nodes() {
    let (catalog, db) = customers_orders(300, 5, 13);
    let stats = db.stats().clone();
    const VIEW: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
         WHERE $C/id/data() = $O/cid/data() \
         RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
    let report = "FOR $R IN document(v)/CustRec $S IN $R/OrderInfo \
         WHERE $S/order/value > 99500 RETURN $R";
    let _ = stats;
    let mut built = Vec::new();
    for optimize in [true, false] {
        let mut m = mediator(catalog.clone(), optimize, AccessMode::Lazy);
        m.define_view("v", VIEW).unwrap();
        let mut s = m.session();
        let med_stats = s.ctx().stats().clone();
        med_stats.reset();
        let p = s.query(report).unwrap();
        let _ = s.child_count(p).unwrap();
        built.push(med_stats.get(Counter::NodesBuilt));
    }
    assert!(
        built[0] < built[1],
        "optimized={} naive={}",
        built[0],
        built[1]
    );
}

/// E6: a decontextualized in-place query's cost tracks the context, not
/// the database: doubling unrelated customers leaves it unchanged.
#[test]
fn e6_in_place_query_cost_tracks_context() {
    let mut costs = Vec::new();
    for n in [100usize, 800] {
        let (catalog, db) = customers_orders(n, 10, 21);
        let stats = db.stats().clone();
        let m = mediator(catalog, true, AccessMode::Lazy);
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let p1 = s.d(p0).unwrap().unwrap();
        stats.reset();
        let a = s
            .q(
                "FOR $O IN document(root)/OrderInfo WHERE $O/order/value > 50000 RETURN $O",
                p1,
            )
            .unwrap();
        let _ = s.child_count(a).unwrap();
        costs.push(stats.get(Counter::TuplesShipped));
    }
    // Same context (customer C000000 with 10 orders) ⇒ same cost.
    assert_eq!(costs[0], costs[1], "{costs:?}");
}

/// The hash join kernel does O(|L| + |R| + |output|) work where the
/// nested loop pays |L|·|R| — checked on the probe counter for a naive
/// (mediator-joined) Q1 plan.
#[test]
fn hash_join_probes_are_linear_not_quadratic() {
    let n = 30;
    let per = 3; // 30 customers × 90 orders
    let (catalog, _db) = customers_orders(n, per, 19);
    let mut probes = Vec::new();
    let mut builds = Vec::new();
    for hash_joins in [true, false] {
        let m = Mediator::with_options(
            catalog.clone(),
            MediatorOptions::builder()
                .access(AccessMode::Lazy)
                .optimize(false) // keep the join at the mediator
                .hash_joins(hash_joins)
                .build(),
        );
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        let _ = s.render(p0); // force the full result
        probes.push(s.ctx().stats().get(Counter::JoinProbes));
        builds.push(s.ctx().stats().get(Counter::HashBuilds));
    }
    let (hash, nl) = (probes[0], probes[1]);
    let (l, r) = ((n) as u64, (n * per) as u64);
    // Hash: one probe per bucket candidate — here every order matches
    // exactly one customer, so ≤ |L| + |R| + |output|.
    assert!(hash <= l + 2 * r, "hash probes={hash}");
    assert!(builds[0] >= 1, "hash kernel built an index");
    // Nested loop: every pair.
    assert!(nl >= l * r, "nl probes={nl}");
    assert!(hash * 5 < nl, "hash={hash} nl={nl}");
}

/// The join kernels are lazy on their outer input: when the outer side
/// is empty, the inner side is never pulled and no hash index is built.
/// (A build-first hash join would drain the inner side before
/// discovering the outer is empty.)
#[test]
fn empty_outer_join_pulls_zero_inner_tuples() {
    use mix::algebra::{Cond, Op, Side};
    use mix::xml::path::LabelPath;
    use std::sync::Arc;

    let n = 40;
    let per = 25; // 1000 orders — pulling any would show in the counter
    let (catalog, db) = customers_orders(n, per, 7);
    let src_stats = db.stats().clone();

    // σ($CID = "ZZZ") over the customers — provably empty on this data.
    let left = Op::Select {
        input: Box::new(Op::GetD {
            input: Box::new(Op::GetD {
                input: Box::new(Op::MkSrc {
                    source: "root1".into(),
                    var: "K".into(),
                }),
                from: "K".into(),
                path: LabelPath::parse("customer").unwrap(),
                to: "C".into(),
            }),
            from: "C".into(),
            path: LabelPath::parse("customer.id.data()").unwrap(),
            to: "CID".into(),
        }),
        cond: Cond::cmp_const("CID", CmpOp::Eq, "ZZZ"),
    };
    let right = Op::GetD {
        input: Box::new(Op::GetD {
            input: Box::new(Op::MkSrc {
                source: "root2".into(),
                var: "K2".into(),
            }),
            from: "K2".into(),
            path: LabelPath::parse("order").unwrap(),
            to: "O".into(),
        }),
        from: "O".into(),
        path: LabelPath::parse("order.cid.data()").unwrap(),
        to: "OCID".into(),
    };
    let equi = Cond::cmp_vars("CID", CmpOp::Eq, "OCID");

    for semijoin in [false, true] {
        let joined = if semijoin {
            Op::SemiJoin {
                left: Box::new(left.clone()),
                right: Box::new(right.clone()),
                cond: Some(equi.clone()),
                keep: Side::Left,
            }
        } else {
            Op::Join {
                left: Box::new(left.clone()),
                right: Box::new(right.clone()),
                cond: Some(equi.clone()),
            }
        };
        let out = if semijoin { "C" } else { "O" };
        let plan = Plan::new(Op::TupleDestroy {
            input: Box::new(joined),
            var: out.into(),
            root: Some("res".into()),
        });
        validate(&plan).unwrap();

        let ctx = Arc::new(EvalContext::new(catalog.clone(), AccessMode::Lazy));
        src_stats.reset();
        let v = VirtualResult::new(&plan, Arc::clone(&ctx)).unwrap();
        assert!(v.first_child(v.root()).is_none(), "semijoin={semijoin}");
        // The outer side drained its n customers finding no survivor;
        // none of the n·per orders crossed the wire.
        assert!(
            src_stats.get(Counter::TuplesShipped) <= n as u64,
            "semijoin={semijoin} shipped={}",
            src_stats.get(Counter::TuplesShipped)
        );
        // And the kernel did no inner-side work at all.
        assert_eq!(
            ctx.stats().get(Counter::HashBuilds),
            0,
            "semijoin={semijoin}"
        );
        assert_eq!(
            ctx.stats().get(Counter::JoinProbes),
            0,
            "semijoin={semijoin}"
        );
        assert_eq!(
            ctx.stats().get(Counter::NlFallbacks),
            0,
            "semijoin={semijoin}"
        );
    }
}

/// Block-at-a-time prefetch must not cost navigate-and-stop sessions
/// anything: every fetch ramp starts at one tuple, so descending to
/// the first result ships exactly one source row under every policy —
/// including the default `Auto`.
#[test]
fn block_auto_first_result_ships_one_row() {
    let (catalog, db) = customers_orders(500, 3, 23);
    let stats = db.stats().clone();
    for block in [BlockPolicy::Off, BlockPolicy::Auto, BlockPolicy::Fixed(64)] {
        let m = Mediator::with_options(
            catalog.clone(),
            MediatorOptions::builder().block(block).build(),
        );
        let mut s = m.session();
        stats.reset();
        let p0 = s.query(Q1).unwrap();
        let _p1 = s.d(p0).unwrap().unwrap();
        assert_eq!(
            stats.get(Counter::TuplesShipped),
            1,
            "{block:?}: first d() must ship one tuple"
        );
    }
}

/// `Off` is the paper's one-tuple-per-pull model and `Fixed(1)` clamps
/// every block to one tuple: both must produce identical cumulative
/// rows-shipped counts at *every* step of a browse session (and the
/// adaptive policy may only ever run ahead, never behind).
#[test]
fn block_off_and_fixed_one_ship_identical_counts() {
    let (catalog, db) = customers_orders(40, 2, 29);
    let stats = db.stats().clone();
    let mut traces: Vec<Vec<u64>> = Vec::new();
    let mut totals: Vec<u64> = Vec::new();
    for block in [BlockPolicy::Off, BlockPolicy::Fixed(1), BlockPolicy::Auto] {
        let m = Mediator::with_options(
            catalog.clone(),
            MediatorOptions::builder().block(block).build(),
        );
        let mut s = m.session();
        stats.reset();
        let p0 = s.query(Q1).unwrap();
        let mut trace = vec![stats.get(Counter::TuplesShipped)];
        let mut cur = s.d(p0).unwrap();
        while let Some(c) = cur {
            trace.push(stats.get(Counter::TuplesShipped));
            cur = s.r(c).unwrap();
        }
        traces.push(trace);
        totals.push(stats.get(Counter::TuplesShipped));
    }
    assert_eq!(traces[0], traces[1], "Fixed(1) must match Off bit-for-bit");
    assert_eq!(
        traces[0].len(),
        traces[2].len(),
        "same result cardinality under every policy"
    );
    for (i, (off, auto)) in traces[0].iter().zip(&traces[2]).enumerate() {
        assert!(auto >= off, "step {i}: auto={auto} ran behind off={off}");
    }
    // All policies ship each row exactly once on a full drain.
    assert_eq!(totals[0], totals[1], "{totals:?}");
    assert_eq!(totals[0], totals[2], "{totals:?}");
}

/// Every block policy produces the identical result document.
#[test]
fn block_policies_are_result_equivalent() {
    let (catalog, _db) = customers_orders(25, 3, 31);
    let mut rendered: Vec<String> = Vec::new();
    for block in [BlockPolicy::Off, BlockPolicy::Fixed(8), BlockPolicy::Auto] {
        let m = Mediator::with_options(
            catalog.clone(),
            MediatorOptions::builder().block(block).build(),
        );
        let mut s = m.session();
        let p0 = s.query(Q1).unwrap();
        rendered.push(s.render(p0));
    }
    assert_eq!(rendered[0], rendered[1]);
    assert_eq!(rendered[0], rendered[2]);
}

/// The memory claim: the lazy result's materialization high-watermark
/// tracks how far navigation went.
#[test]
fn lazy_memory_watermark() {
    let (catalog, _db) = customers_orders(500, 3, 17);
    let m = mediator(catalog, true, AccessMode::Lazy);
    let mut s = m.session();
    let p0 = s.query(Q1).unwrap();
    let shallow = {
        let _ = s.d(p0);
        s.ctx().stats().get(Counter::NodesBuilt)
    };
    // Walk everything.
    let mut cur = s.d(p0).unwrap();
    while let Some(c) = cur {
        let _ = s.render(c);
        cur = s.r(c).unwrap();
    }
    let deep = s.ctx().stats().get(Counter::NodesBuilt);
    assert!(shallow * 10 < deep, "shallow={shallow} deep={deep}");
}
