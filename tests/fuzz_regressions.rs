//! Minimized repros for equivalence divergences surfaced by the
//! `mix-workload` fuzzer (PR 9). Each test pins one fixed bug by
//! replaying the minimized session script across the knob matrix and
//! asserting the transcripts agree, exactly as the fuzzer does.

use mix::prelude::*;
use mix_workload::fuzz::{Variant, ALL_VARIANTS};
use mix_workload::script::{render_transcript, run_script, run_script_raw, Op, Reg, Script};
use std::sync::Arc;

fn build() -> mix::wrapper::Catalog {
    let (catalog, _db) = mix_repro::datagen::customers_orders(5, 2, 7);
    catalog
}

/// Replay `script` under every deterministic variant and assert the
/// transcript matches the baseline at that variant's normalization.
fn assert_equivalent(script: &Script) {
    let m = Arc::new(Mediator::new(build()));
    let mut s = m.session_arc();
    let raw = run_script_raw(&mut s, script);
    for &v in ALL_VARIANTS {
        if matches!(v, Variant::Chaos) {
            continue; // fault injection is the soak runner's job
        }
        let base = render_transcript(script, &raw, v.norm());
        let got = match v {
            Variant::CachedPlan => {
                let opts = MediatorOptions::builder()
                    .shared_plan_cache(Arc::new(SharedPlanCache::new(4, 64)))
                    .build();
                let m = Arc::new(Mediator::with_options(build(), opts));
                let mut s1 = m.session_arc();
                let fresh = run_script(&mut s1, script, v.norm());
                let mut s2 = m.session_arc();
                let cached = run_script(&mut s2, script, v.norm());
                assert_eq!(fresh, cached, "fresh vs cached plan transcripts");
                continue;
            }
            Variant::Wire => {
                let factory = move || Mediator::with_options(build(), Variant::Wire.options());
                let mut server =
                    Server::start("127.0.0.1:0", ServerConfig::default(), Arc::new(factory))
                        .expect("start server");
                let mut client = WireClient::connect(server.addr()).expect("connect client");
                let got = run_script(&mut client, script, v.norm());
                client.close().ok();
                server.shutdown();
                got
            }
            _ => {
                let m = Arc::new(Mediator::with_options(build(), v.options()));
                let mut s = m.session_arc();
                run_script(&mut s, script, v.norm())
            }
        };
        assert_eq!(base, got, "baseline vs {} transcripts", v.name());
    }
}

/// Bug 1: the rewrite driver's empty-propagation collapsed an
/// unsatisfiable composed plan to a bare `empty`, losing the result
/// root's `tD` wrapper — so the optimized session named the answer
/// document `rootv{n+1}` while the naive session kept `rootv{n}`,
/// and every subsequent root oid render diverged.
#[test]
fn empty_propagation_keeps_result_root_name() {
    let script = Script {
        queries: vec!["FOR $A IN source(&root1)/customer RETURN $A".into()],
        inplace: vec![
            // No `Rec593` child exists in the result: the composed
            // plan is unsatisfiable and rewrites to empty.
            "FOR $X IN document(root)/Rec593 RETURN <Z593> $X </Z593> {$X}".into(),
        ],
        ops: vec![
            Op::Query(0),
            Op::QFrom {
                query: 0,
                node: Reg(0),
            },
            Op::Render(Reg(1)),
            Op::ChildCount(Reg(1)),
        ],
    };
    assert_equivalent(&script);
}

/// Bug 2: SQL pushdown bound element-valued dependent variables
/// (`$B IN $A/orid` — no `data()` step) as bare column *values*, so
/// the optimized plan rendered `F = 1` where the naive plan rendered
/// an `orid` field element inside `F`. Fixed by the `rQ` map's
/// `FieldElement` binding, which rebuilds `<orid>1</orid>` with its
/// naive oid `&{key}.orid` from the shipped columns.
#[test]
fn pushdown_preserves_dependent_field_elements() {
    let script = Script {
        queries: vec!["FOR $A IN document(root2)/order $B IN $A/orid \
             RETURN <Kid113> $A <F113> $B </F113> {$B} </Kid113> {$A}"
            .into()],
        inplace: vec![],
        ops: vec![Op::Query(0), Op::Render(Reg(0))],
    };
    assert_equivalent(&script);
}

/// Bug 3: rule R9 (join introduction) alpha-renamed the copied
/// subplan's variables — including `crElt` output variables, whose
/// names were baked into minted skolem oids. Composing a query over a
/// grouped view then rendered `&($P_c0,g(…))` oids under the
/// optimizer where naive evaluation minted `&($P,g(…))`. Fixed by
/// giving `crElt` an immutable oid `tag` that rewrite-internal
/// hygiene renames never touch.
#[test]
fn rewrite_renames_leave_skolem_oid_tags_alone() {
    let script = Script {
        queries: vec!["FOR $A IN document(root2)/order $B IN $A/orid \
             RETURN <K> $A <F> $B </F> {$B} </K> {$A}"
            .into()],
        inplace: vec![
            // Navigates the view's grouped collection: the composed
            // plan hits R9, which copies the `crElt(F, g($B))` subplan.
            "FOR $X IN document(root)/K/F RETURN <P> $X </P> {$X}".into(),
        ],
        ops: vec![
            Op::Query(0),
            Op::QFrom {
                query: 0,
                node: Reg(0),
            },
            Op::Render(Reg(1)),
            Op::ChildCount(Reg(1)),
        ],
    };
    assert_equivalent(&script);
}
