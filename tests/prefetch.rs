//! Pipelined prefetch: equivalence, laziness, and thread lifecycle.
//!
//! The prefetcher moves backend pulls onto a per-cursor background
//! thread, but it must be *observationally* invisible: the same rows in
//! the same order, the same shipped-tuple/shipped-block accounting, the
//! same fault/retry schedule (the chaos backend's schedule keys off the
//! admit-size sequence, which the thread replays from the consumer's
//! own block ramp). These tests pin that equivalence bit-for-bit, then
//! pin the two properties prefetch must *not* buy at the paper's
//! expense: laziness (no speculation before the first demanded pull)
//! and bounded lifetime (no thread outlives its session).

use mix::prelude::*;
use mix_repro::datagen::customers_orders;

const Q1: &str = "FOR $C IN source(&root1)/customer $O IN document(&root2)/order \
     WHERE $C/id/data() = $O/cid/data() \
     RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}";
const Q2: &str = "FOR $P IN document(root)/CustRec WHERE $P/customer/name < \"E\" RETURN $P";
const Q3: &str = "FOR $O IN document(root)/OrderInfo WHERE $O/order/value < 60000 RETURN $O";
const SCAN: &str = "FOR $C IN source(&root1)/customer RETURN $C";

const SEED: u64 = 0xC0FFEE;

/// Walk the whole subtree with the fallible navigation commands,
/// recording identity, label, and value of every node.
fn drain_tree(s: &mut QdomSession<'_>, p: QNode, out: &mut String) -> Result<()> {
    out.push_str(&format!("{} {:?} {:?}\n", s.oid(p), s.fl(p)?, s.fv(p)?));
    let mut cur = s.d(p)?;
    while let Some(c) = cur {
        drain_tree(s, c, out)?;
        cur = s.r(c)?;
    }
    Ok(())
}

/// The counters a prefetcher is not allowed to perturb. (The prefetch
/// counters themselves — hits, stalls, aborts — of course differ.)
fn pinned_counters(stats: &Stats) -> Vec<(Counter, u64)> {
    [
        Counter::TuplesShipped,
        Counter::BlocksShipped,
        Counter::RowsScanned,
        Counter::FaultsInjected,
        Counter::RetriesAttempted,
        Counter::BackendErrors,
    ]
    .into_iter()
    .map(|c| (c, stats.get(c)))
    .collect()
}

/// Run the paper's Q1/Q2/Q3 session under the given policies and drain
/// every result completely. Returns the transcript plus the pinned
/// source-side counters.
fn q123_transcript(
    block: BlockPolicy,
    prefetch: PrefetchPolicy,
    fault: Option<FaultPolicy>,
) -> (String, Vec<(Counter, u64)>) {
    let (catalog, db) = customers_orders(12, 3, 17);
    let stats = db.stats().clone();
    db.set_fault_policy(fault);
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder()
            .block(block)
            .prefetch(prefetch)
            .build(),
    );
    let mut s = m.session();
    let mut out = String::new();
    let p0 = s.query(Q1).expect("Q1");
    drain_tree(&mut s, p0, &mut out).expect("drain Q1");
    let p4 = s.q(Q2, p0).expect("Q2");
    drain_tree(&mut s, p4, &mut out).expect("drain Q2");
    let p1 = s.d(p0).expect("d").expect("Q1 has results");
    let p9 = s.q(Q3, p1).expect("Q3");
    drain_tree(&mut s, p9, &mut out).expect("drain Q3");
    drop(s);
    (out, pinned_counters(&stats))
}

/// The headline equivalence: every prefetch policy, crossed with every
/// block policy, crossed with 10%-per-block transient chaos faults,
/// produces bit-for-bit the transcript and counters of the synchronous
/// (prefetch-off) run. This is the contract that makes the prefetcher
/// safe to enable: it can only move *when* a pull happens, never *what*
/// it returns or how it is accounted.
#[test]
fn prefetch_is_bit_for_bit_equivalent_under_chaos() {
    let mut total_faults = 0;
    for block in [BlockPolicy::Off, BlockPolicy::Auto] {
        for fault in [None, Some(FaultPolicy::transient(SEED, 100))] {
            let (base_out, base_counters) = q123_transcript(block, PrefetchPolicy::Off, fault);
            for prefetch in [
                PrefetchPolicy::Depth(1),
                PrefetchPolicy::Depth(4),
                PrefetchPolicy::Auto,
            ] {
                let (out, counters) = q123_transcript(block, prefetch, fault);
                assert_eq!(
                    base_out,
                    out,
                    "transcript divergence under {block:?}/{prefetch:?} (chaos: {})",
                    fault.is_some()
                );
                assert_eq!(
                    base_counters,
                    counters,
                    "counter divergence under {block:?}/{prefetch:?} (chaos: {})",
                    fault.is_some()
                );
            }
            if fault.is_some() {
                let faults = base_counters
                    .iter()
                    .find(|(c, _)| *c == Counter::FaultsInjected)
                    .unwrap()
                    .1;
                total_faults += faults;
            }
        }
    }
    // The sweep actually exercised the fault path.
    assert!(total_faults > 0, "seed {SEED:#x} injected no faults");
}

/// Modelled backend latency is deferred, not skipped: results at a 1ms
/// RTT are identical to results at zero latency, under both the
/// synchronous path (which sleeps the RTT inline) and the pipelined
/// path (which waits for each block's arrival deadline).
#[test]
fn latency_is_invisible_to_results() {
    let run = |latency: Option<u64>, prefetch: PrefetchPolicy| {
        let (catalog, db) = customers_orders(6, 2, 17);
        db.set_latency_ms(latency);
        let m = Mediator::with_options(
            catalog,
            MediatorOptions::builder().prefetch(prefetch).build(),
        );
        let mut s = m.session();
        let mut out = String::new();
        let p0 = s.query(Q1).expect("Q1");
        drain_tree(&mut s, p0, &mut out).expect("drain");
        out
    };
    let base = run(None, PrefetchPolicy::Off);
    assert_eq!(base, run(Some(1), PrefetchPolicy::Off));
    assert_eq!(base, run(Some(1), PrefetchPolicy::Auto));
}

/// Laziness is untouched by an armed prefetcher: compiling a query
/// ships nothing, the first `d()` ships exactly one tuple (served
/// synchronously — speculation may only begin *after* it), and an
/// abandoned session never drains the rest.
#[test]
fn armed_prefetch_preserves_first_pull_laziness() {
    for prefetch in [
        PrefetchPolicy::Off,
        PrefetchPolicy::Depth(4),
        PrefetchPolicy::Auto,
    ] {
        let (catalog, db) = customers_orders(40, 2, 17);
        let stats = db.stats().clone();
        let m = Mediator::with_options(
            catalog,
            MediatorOptions::builder().prefetch(prefetch).build(),
        );
        let mut s = m.session();
        let p0 = s.query(SCAN).expect("compile");
        assert_eq!(
            stats.get(Counter::TuplesShipped),
            0,
            "query compilation pulled rows under {prefetch:?}"
        );
        let _p1 = s.d(p0).expect("first child").expect("non-empty");
        assert_eq!(
            stats.get(Counter::TuplesShipped),
            1,
            "first d() must ship exactly one tuple under {prefetch:?}"
        );
        // Tuples are only *accounted* when the consumer receives them,
        // so the counter cannot creep even while the (now running)
        // prefetcher speculates into its bounded channel.
        drop(s);
        assert_eq!(
            stats.get(Counter::TuplesShipped),
            1,
            "abandoning the session shipped more rows under {prefetch:?}"
        );
    }
}

/// No prefetcher thread outlives its session: abandoning a session
/// mid-drain (with the prefetcher parked on a full channel) cancels and
/// joins the thread, and the abort is counted.
#[test]
fn abandoned_session_reaps_prefetcher_threads() {
    let (catalog, db) = customers_orders(200, 1, 17);
    let stats = db.stats().clone();
    let m = Mediator::with_options(
        catalog,
        MediatorOptions::builder()
            // One-row blocks + depth 2: the thread outpaces a navigating
            // consumer immediately and parks on the bounded channel.
            .block(BlockPolicy::Off)
            .prefetch(PrefetchPolicy::Depth(2))
            .build(),
    );
    let mut s = m.session();
    let p0 = s.query(SCAN).expect("compile");
    // Demand the first block: this is what starts the prefetcher.
    let p1 = s.d(p0).expect("d").expect("non-empty");
    let _ = s.r(p1).expect("r");
    // Abandon the session mid-drain. Dropping it must stop the
    // prefetcher (readahead is bounded: 200 rows were never pulled),
    // join the thread, and count the abort.
    drop(s);
    // Our thread is joined synchronously on drop; concurrently running
    // tests may hold their own prefetchers, so poll the global gauge
    // down to zero instead of snapshotting it.
    let t0 = std::time::Instant::now();
    while active_prefetchers() > 0 {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "prefetcher thread leaked: {} still alive",
            active_prefetchers()
        );
        std::thread::yield_now();
    }
    assert!(
        stats.get(Counter::PrefetchAborted) >= 1,
        "cancelled prefetcher never recorded its abort"
    );
    // Bounded readahead: depth 2 + the stash means only a handful of
    // the 200 rows ever shipped.
    assert!(
        stats.get(Counter::TuplesShipped) < 20,
        "abandoned drain shipped {} of 200 rows",
        stats.get(Counter::TuplesShipped)
    );
}

/// The session block-ramp floor (the `join_drain` small-block fix): once
/// a drain has demonstrated block-sized appetite, later cursors in the
/// same session restart their `Auto` ramp at the learned floor instead
/// of 1, so a second identical drain ships the same rows in fewer
/// blocks. Fresh sessions still start at 1 (first-d() laziness).
#[test]
fn auto_ramp_restarts_floored_within_a_session() {
    let (catalog, db) = customers_orders(200, 1, 17);
    let stats = db.stats().clone();
    let m = Mediator::new(catalog); // Block::Auto, Prefetch::Off defaults
    let mut s = m.session();
    let mut out1 = String::new();
    let p0 = s.query(SCAN).expect("q");
    drain_tree(&mut s, p0, &mut out1).expect("drain 1");
    let tuples1 = stats.get(Counter::TuplesShipped);
    let blocks1 = stats.get(Counter::BlocksShipped);
    let mut out2 = String::new();
    let p0b = s.query(SCAN).expect("q again");
    drain_tree(&mut s, p0b, &mut out2).expect("drain 2");
    let tuples2 = stats.get(Counter::TuplesShipped) - tuples1;
    let blocks2 = stats.get(Counter::BlocksShipped) - blocks1;
    assert_eq!(tuples1, tuples2, "same drain, same rows");
    assert!(
        blocks2 < blocks1,
        "floored ramp must re-ship {tuples2} rows in fewer blocks ({blocks2} vs {blocks1})"
    );
    // The cold ramp (1,2,4,…) takes ⌈log2⌉-ish pulls; the warm one
    // starts at the learned floor. 200 rows: cold = 1+2+4+…+128 → 9
    // blocks; warm floor 128 → 2 blocks.
    assert!(blocks1 >= 8, "cold ramp took {blocks1} blocks");
    assert!(blocks2 <= 3, "warm ramp took {blocks2} blocks");
}
